//! Fault-plan configuration: which fault classes fire, how often, and
//! how hard — plus the named storm profiles the chaos harness
//! (`repro chaos --storm <profile>`) runs the serving layer under.

use serde::{Deserialize, Serialize};

/// Default bound on the in-memory fault event log (see
/// [`FaultConfig::event_log_cap`]): large enough that no shipped
/// experiment ever drops an event, small enough that a week-long chaos
/// soak cannot grow memory without bound.
pub const DEFAULT_EVENT_LOG_CAP: u64 = 65_536;

/// Preset severity levels for quick wiring from CLI flags and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// Rare, survivable faults — retries alone should absorb them.
    Light,
    /// Frequent-enough faults that retry, backpressure, and occasional
    /// degradation all get exercised.
    Moderate,
    /// Sustained pressure: degradation is expected, not exceptional.
    Severe,
}

/// Rates and magnitudes for every fault class. All rates are per-probe
/// probabilities in [0, 1]; a class is disabled by setting its rate to
/// zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed defining the entire fault pattern.
    pub seed: u64,
    /// P(disk read errors) per (key, attempt).
    pub disk_error_rate: f64,
    /// P(disk read is torn) per (key, attempt).
    pub torn_read_rate: f64,
    /// P(link degraded) per bandwidth window.
    pub link_degrade_rate: f64,
    /// Bandwidth multiplier while degraded (0 < f < 1).
    pub link_degrade_factor: f64,
    /// P(transfer stalls) per transfer.
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// P(pool pressure spike) per probe.
    pub pool_pressure_rate: f64,
    /// Bytes transiently claimed by a pressure spike.
    pub pool_pressure_bytes: u64,
    /// Length of the pressure episode in allocation probes: spikes only
    /// fire on the first `pool_pressure_burst` probes, modelling a
    /// co-tenant's transient memory grab that later subsides. `0` means
    /// no bound — pressure persists for the whole run.
    pub pool_pressure_burst: u64,
    /// P(prefetched item dropped) per item.
    pub prefetch_drop_rate: f64,
    /// P(client disconnects mid-generation) per admission.
    pub disconnect_rate: f64,
    /// P(slot crashes mid-generation) per admission attempt.
    pub slot_crash_rate: f64,
    /// Ring-buffer bound on the retained fault event log. Once full, the
    /// oldest events are evicted (and counted as dropped); `0` keeps no
    /// events at all. Counters are unaffected either way.
    pub event_log_cap: u64,
}

impl FaultConfig {
    /// A profile's standard rates with the given seed.
    pub fn profile(seed: u64, profile: FaultProfile) -> Self {
        match profile {
            FaultProfile::Light => FaultConfig {
                seed,
                disk_error_rate: 0.02,
                torn_read_rate: 0.01,
                link_degrade_rate: 0.02,
                link_degrade_factor: 0.5,
                stall_rate: 0.01,
                stall_ms: 2,
                pool_pressure_rate: 0.01,
                pool_pressure_bytes: 1 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.01,
                disconnect_rate: 0.01,
                slot_crash_rate: 0.005,
                event_log_cap: DEFAULT_EVENT_LOG_CAP,
            },
            FaultProfile::Moderate => FaultConfig {
                seed,
                disk_error_rate: 0.10,
                torn_read_rate: 0.05,
                link_degrade_rate: 0.10,
                link_degrade_factor: 0.25,
                stall_rate: 0.05,
                stall_ms: 5,
                pool_pressure_rate: 0.05,
                pool_pressure_bytes: 8 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.05,
                disconnect_rate: 0.05,
                slot_crash_rate: 0.02,
                event_log_cap: DEFAULT_EVENT_LOG_CAP,
            },
            FaultProfile::Severe => FaultConfig {
                seed,
                disk_error_rate: 0.25,
                torn_read_rate: 0.15,
                link_degrade_rate: 0.35,
                link_degrade_factor: 0.10,
                stall_rate: 0.15,
                stall_ms: 10,
                pool_pressure_rate: 0.20,
                pool_pressure_bytes: 32 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.15,
                disconnect_rate: 0.15,
                slot_crash_rate: 0.08,
                event_log_cap: DEFAULT_EVENT_LOG_CAP,
            },
        }
    }

    /// All rates zero — an enabled injector that never fires (counters
    /// and the event log still work; useful for tests of the plumbing).
    pub fn quiescent(seed: u64) -> Self {
        FaultConfig {
            seed,
            disk_error_rate: 0.0,
            torn_read_rate: 0.0,
            link_degrade_rate: 0.0,
            link_degrade_factor: 1.0,
            stall_rate: 0.0,
            stall_ms: 0,
            pool_pressure_rate: 0.0,
            pool_pressure_bytes: 0,
            pool_pressure_burst: 0,
            prefetch_drop_rate: 0.0,
            disconnect_rate: 0.0,
            slot_crash_rate: 0.0,
            event_log_cap: DEFAULT_EVENT_LOG_CAP,
        }
    }

    /// A named chaos-storm configuration: the fault mix `repro chaos`
    /// drives the serving layer under. Storms only use the fault classes
    /// the scheduler observes (pool pressure, transfer stalls, client
    /// disconnects, slot crashes); disk/prefetch classes stay quiet so a
    /// storm's effect is attributable.
    pub fn storm(seed: u64, profile: StormProfile) -> Self {
        let base = FaultConfig::quiescent(seed);
        match profile {
            StormProfile::Default => FaultConfig {
                disconnect_rate: 0.10,
                slot_crash_rate: 0.05,
                pool_pressure_rate: 0.20,
                pool_pressure_bytes: 2 << 30,
                pool_pressure_burst: 48,
                stall_rate: 0.05,
                stall_ms: 20,
                ..base
            },
            StormProfile::PoolSqueeze => FaultConfig {
                pool_pressure_rate: 0.60,
                pool_pressure_bytes: 4 << 30,
                pool_pressure_burst: 0,
                ..base
            },
            StormProfile::Disconnects => FaultConfig {
                disconnect_rate: 0.40,
                stall_rate: 0.02,
                stall_ms: 10,
                ..base
            },
            StormProfile::Crashes => FaultConfig {
                slot_crash_rate: 0.30,
                ..base
            },
            StormProfile::Blackout => FaultConfig {
                disconnect_rate: 0.25,
                slot_crash_rate: 0.15,
                pool_pressure_rate: 0.35,
                pool_pressure_bytes: 3 << 30,
                pool_pressure_burst: 0,
                stall_rate: 0.15,
                stall_ms: 50,
                ..base
            },
        }
    }
}

/// Named fault storms for the chaos harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StormProfile {
    /// A bit of everything at survivable rates; the `repro chaos`
    /// default.
    Default,
    /// Sustained pool-pressure spikes squeezing KV admission.
    PoolSqueeze,
    /// Clients vanishing mid-generation (plus light stalls).
    Disconnects,
    /// Slots dying mid-generation and retrying from their prefix.
    Crashes,
    /// Everything at once, at severe rates.
    Blackout,
}

impl StormProfile {
    pub const ALL: [StormProfile; 5] = [
        StormProfile::Default,
        StormProfile::PoolSqueeze,
        StormProfile::Disconnects,
        StormProfile::Crashes,
        StormProfile::Blackout,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StormProfile::Default => "default",
            StormProfile::PoolSqueeze => "pool-squeeze",
            StormProfile::Disconnects => "disconnects",
            StormProfile::Crashes => "crashes",
            StormProfile::Blackout => "blackout",
        }
    }

    /// Parse a CLI storm name (the inverse of [`StormProfile::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_by_severity() {
        let l = FaultConfig::profile(1, FaultProfile::Light);
        let m = FaultConfig::profile(1, FaultProfile::Moderate);
        let s = FaultConfig::profile(1, FaultProfile::Severe);
        assert!(l.disk_error_rate < m.disk_error_rate);
        assert!(m.disk_error_rate < s.disk_error_rate);
        assert!(l.link_degrade_factor > m.link_degrade_factor);
        assert!(m.link_degrade_factor > s.link_degrade_factor);
    }

    #[test]
    fn storm_names_round_trip() {
        for p in StormProfile::ALL {
            assert_eq!(StormProfile::parse(p.name()), Some(p));
        }
        assert_eq!(StormProfile::parse("nonsense"), None);
    }

    #[test]
    fn storms_only_arm_scheduler_visible_classes() {
        for p in StormProfile::ALL {
            let c = FaultConfig::storm(3, p);
            assert_eq!(c.disk_error_rate, 0.0, "{p:?}");
            assert_eq!(c.torn_read_rate, 0.0, "{p:?}");
            assert_eq!(c.prefetch_drop_rate, 0.0, "{p:?}");
            assert!(c.event_log_cap > 0);
            assert!(
                c.disconnect_rate + c.slot_crash_rate + c.pool_pressure_rate + c.stall_rate > 0.0,
                "storm {p:?} must arm something"
            );
        }
    }

    #[test]
    fn config_serialises() {
        let c = FaultConfig::profile(77, FaultProfile::Severe);
        let v = serde::Serialize::serialize(&c);
        let back: FaultConfig = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, c);
    }
}
