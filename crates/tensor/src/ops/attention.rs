//! Multi-head self-attention with a KV cache — the computation of Figure 1:
//! scores `QKᵀ/√d_k`, softmax, then the value mixdown. Prefill processes all
//! prompt tokens causally; decode attends one new token against the cache.

use crate::ops::elementwise::softmax_slice;
use crate::ops::matmul::dot;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Key/value cache for one transformer layer: `[batch, seq, hidden]` for
/// keys and values, growing along `seq` as tokens are generated — the
/// *linear* growth the paper highlights in Figure 1.
#[derive(Debug, Clone)]
pub struct KvCache {
    batch: usize,
    hidden: usize,
    capacity: usize,
    len: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl KvCache {
    /// An empty cache able to hold `capacity` token positions.
    pub fn new(batch: usize, hidden: usize, capacity: usize) -> Self {
        KvCache {
            batch,
            hidden,
            capacity,
            len: 0,
            k: vec![0.0; batch * capacity * hidden],
            v: vec![0.0; batch * capacity * hidden],
        }
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Cached token positions so far.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes the cache occupies at f32 (both K and V).
    pub fn bytes(&self) -> usize {
        2 * self.batch * self.capacity * self.hidden * std::mem::size_of::<f32>()
    }

    /// Append `t` new token positions: `k_new`/`v_new` are
    /// `[batch, t, hidden]` (or `[batch, hidden]` for `t = 1`).
    pub fn append(&mut self, k_new: &Tensor, v_new: &Tensor) {
        let (b, t, h) = match k_new.rank() {
            2 => (k_new.dim(0), 1, k_new.dim(1)),
            3 => (k_new.dim(0), k_new.dim(1), k_new.dim(2)),
            r => panic!("KvCache::append expects rank 2 or 3, got {r}"),
        };
        assert_eq!(b, self.batch, "batch mismatch");
        assert_eq!(h, self.hidden, "hidden mismatch");
        assert_eq!(k_new.shape(), v_new.shape(), "K/V shape mismatch");
        assert!(
            self.len + t <= self.capacity,
            "KV cache overflow: {} + {t} > {}",
            self.len,
            self.capacity
        );
        for bi in 0..b {
            let dst0 = (bi * self.capacity + self.len) * h;
            let src0 = bi * t * h;
            self.k[dst0..dst0 + t * h].copy_from_slice(&k_new.data()[src0..src0 + t * h]);
            self.v[dst0..dst0 + t * h].copy_from_slice(&v_new.data()[src0..src0 + t * h]);
        }
        self.len += t;
    }

    /// Keys for batch item `b`: a `[len, hidden]` row-major slice.
    pub fn keys(&self, b: usize) -> &[f32] {
        let start = b * self.capacity * self.hidden;
        &self.k[start..start + self.len * self.hidden]
    }

    /// Values for batch item `b`: a `[len, hidden]` row-major slice.
    pub fn values(&self, b: usize) -> &[f32] {
        let start = b * self.capacity * self.hidden;
        &self.v[start..start + self.len * self.hidden]
    }
}

/// Decode-phase attention: one query token per batch item against the whole
/// cache. `q` is `[batch, hidden]`; returns `[batch, hidden]`.
///
/// Parallelised over (batch, head) pairs — independent work, no sharing.
pub fn mha_decode(q: &Tensor, cache: &KvCache, num_heads: usize) -> Tensor {
    assert_eq!(q.rank(), 2, "decode query must be [batch, hidden]");
    let batch = q.dim(0);
    let hidden = q.dim(1);
    assert_eq!(batch, cache.batch(), "batch mismatch");
    assert_eq!(hidden, cache.hidden(), "hidden mismatch");
    assert_eq!(hidden % num_heads, 0, "hidden not divisible by heads");
    let hd = hidden / num_heads;
    let seq = cache.len();
    assert!(seq > 0, "attention against an empty cache");
    let scale = 1.0 / (hd as f32).sqrt();

    let mut out = vec![0.0f32; batch * hidden];
    out.par_chunks_mut(hd)
        .enumerate()
        .for_each(|(idx, out_head)| {
            let b = idx / num_heads;
            let h = idx % num_heads;
            let q_head = &q.data()[b * hidden + h * hd..b * hidden + (h + 1) * hd];
            let keys = cache.keys(b);
            let values = cache.values(b);
            let mut scores = vec![0.0f32; seq];
            for (t, s) in scores.iter_mut().enumerate() {
                let k_head = &keys[t * hidden + h * hd..t * hidden + (h + 1) * hd];
                *s = dot(q_head, k_head) * scale;
            }
            softmax_slice(&mut scores);
            for (t, &w) in scores.iter().enumerate() {
                let v_head = &values[t * hidden + h * hd..t * hidden + (h + 1) * hd];
                for (o, &v) in out_head.iter_mut().zip(v_head) {
                    *o += w * v;
                }
            }
        });

    Tensor::from_vec([batch, hidden], out)
}

/// Prefill-phase causal attention: `q`, `k`, `v` are `[batch, s, hidden]`;
/// position `i` attends to positions `0..=i`. Returns `[batch, s, hidden]`.
pub fn mha_prefill(q: &Tensor, k: &Tensor, v: &Tensor, num_heads: usize) -> Tensor {
    assert_eq!(q.rank(), 3, "prefill tensors must be [batch, s, hidden]");
    assert_eq!(q.shape(), k.shape(), "Q/K shape mismatch");
    assert_eq!(q.shape(), v.shape(), "Q/V shape mismatch");
    let (batch, s, hidden) = (q.dim(0), q.dim(1), q.dim(2));
    assert_eq!(hidden % num_heads, 0, "hidden not divisible by heads");
    let hd = hidden / num_heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut out = vec![0.0f32; batch * s * hidden];
    // Parallelise over (batch, head); each owns a [s, hd] output strip that
    // is strided in the output buffer, so collect locally then scatter.
    let strips: Vec<((usize, usize), Vec<f32>)> = (0..batch * num_heads)
        .into_par_iter()
        .map(|idx| {
            let b = idx / num_heads;
            let h = idx % num_heads;
            fn head_of(
                t: &Tensor,
                i: usize,
                (b, s, hidden, h, hd): (usize, usize, usize, usize, usize),
            ) -> &[f32] {
                let base = (b * s + i) * hidden + h * hd;
                &t.data()[base..base + hd]
            }
            let geom = (b, s, hidden, h, hd);
            let mut strip = vec![0.0f32; s * hd];
            let mut scores = vec![0.0f32; s];
            for i in 0..s {
                let q_i = head_of(q, i, geom);
                for (t, sc) in scores[..=i].iter_mut().enumerate() {
                    *sc = dot(q_i, head_of(k, t, geom)) * scale;
                }
                softmax_slice(&mut scores[..=i]);
                let out_i = &mut strip[i * hd..(i + 1) * hd];
                for (t, &w) in scores[..=i].iter().enumerate() {
                    for (o, &vv) in out_i.iter_mut().zip(head_of(v, t, geom)) {
                        *o += w * vv;
                    }
                }
            }
            ((b, h), strip)
        })
        .collect();
    for ((b, h), strip) in strips {
        for i in 0..s {
            let dst = (b * s + i) * hidden + h * hd;
            out[dst..dst + hd].copy_from_slice(&strip[i * hd..(i + 1) * hd]);
        }
    }

    Tensor::from_vec([batch, s, hidden], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_append_and_slice() {
        let mut c = KvCache::new(2, 4, 8);
        assert!(c.is_empty());
        let k1 = Tensor::from_vec([2, 4], vec![1.0; 8]);
        let v1 = Tensor::from_vec([2, 4], vec![2.0; 8]);
        c.append(&k1, &v1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.keys(0), &[1.0; 4]);
        assert_eq!(c.values(1), &[2.0; 4]);
        // rank-3 append of 2 more positions
        let k2 = Tensor::from_vec([2, 2, 4], vec![3.0; 16]);
        c.append(&k2, &k2);
        assert_eq!(c.len(), 3);
        assert_eq!(&c.keys(0)[4..], &[3.0; 8]);
    }

    #[test]
    #[should_panic(expected = "KV cache overflow")]
    fn cache_overflow_detected() {
        let mut c = KvCache::new(1, 2, 1);
        let t = Tensor::zeros([1, 2]);
        c.append(&t, &t);
        c.append(&t, &t);
    }

    #[test]
    fn decode_with_single_entry_returns_value() {
        // With one cached position the softmax is a singleton → output = V.
        let mut c = KvCache::new(1, 8, 4);
        let k = Tensor::randn([1, 8], 1.0, 1);
        let v = Tensor::randn([1, 8], 1.0, 2);
        c.append(&k, &v);
        let q = Tensor::randn([1, 8], 1.0, 3);
        let out = mha_decode(&q, &c, 2);
        assert!(out.allclose(&v, 1e-6));
    }

    #[test]
    fn decode_uniform_keys_average_values() {
        // Identical keys → uniform attention → output = mean of values.
        let mut c = KvCache::new(1, 4, 4);
        let k = Tensor::full([1, 4], 1.0);
        for val in [0.0f32, 2.0] {
            c.append(&k, &Tensor::full([1, 4], val));
        }
        let q = Tensor::full([1, 4], 0.5);
        let out = mha_decode(&q, &c, 1);
        assert!(out.allclose(&Tensor::full([1, 4], 1.0), 1e-5));
    }

    #[test]
    fn prefill_last_token_matches_decode() {
        // The last prefill position attends to all s positions — the same
        // computation as a decode step with the full cache.
        let (b, s, h, heads) = (2, 5, 16, 4);
        let q = Tensor::randn([b, s, h], 1.0, 10);
        let k = Tensor::randn([b, s, h], 1.0, 11);
        let v = Tensor::randn([b, s, h], 1.0, 12);
        let pre = mha_prefill(&q, &k, &v, heads);

        let mut cache = KvCache::new(b, h, s);
        cache.append(&k, &v);
        let q_last = {
            let mut data = Vec::with_capacity(b * h);
            for bi in 0..b {
                data.extend_from_slice(&q.data()[(bi * s + (s - 1)) * h..(bi * s + s) * h]);
            }
            Tensor::from_vec([b, h], data)
        };
        let dec = mha_decode(&q_last, &cache, heads);
        for bi in 0..b {
            let pre_last = &pre.data()[(bi * s + (s - 1)) * h..(bi * s + s) * h];
            let dec_row = dec.row(bi);
            for (a, c) in pre_last.iter().zip(dec_row) {
                assert!((a - c).abs() < 1e-5, "{a} vs {c}");
            }
        }
    }

    #[test]
    fn prefill_is_causal() {
        // Changing a later K/V position must not affect earlier outputs.
        let (b, s, h, heads) = (1, 4, 8, 2);
        let q = Tensor::randn([b, s, h], 1.0, 20);
        let k = Tensor::randn([b, s, h], 1.0, 21);
        let v = Tensor::randn([b, s, h], 1.0, 22);
        let base = mha_prefill(&q, &k, &v, heads);

        let mut k2 = k.clone();
        let mut v2 = v.clone();
        // Perturb the final position only.
        for j in 0..h {
            *k2.at_mut(&[0, s - 1, j]) += 5.0;
            *v2.at_mut(&[0, s - 1, j]) -= 3.0;
        }
        let pert = mha_prefill(&q, &k2, &v2, heads);
        for i in 0..s - 1 {
            for j in 0..h {
                assert_eq!(base.at(&[0, i, j]), pert.at(&[0, i, j]), "pos {i} changed");
            }
        }
    }
}
