//! The §5.2 headline numbers, derived from Table 3: LM-Offload vs
//! FlexGen "up to 2.95× (2.34× on average)" and vs ZeRO-Inference
//! "up to 2.88× (1.57× on average)".

use crate::experiments::table3;
use lm_offload::{speedup_over, Framework, Speedup, Table3Row};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    pub vs_flexgen: Option<Speedup>,
    pub vs_zero: Option<Speedup>,
    /// Cells where a baseline actually beat LM-Offload (the paper admits
    /// one: ZeRO on OPT-30B at len=128, by ~7%).
    pub baseline_wins: Vec<String>,
}

/// Summarise a set of (already normalised) Table 3 rows.
pub fn summarise(rows: &[Table3Row]) -> Summary {
    let baseline_wins = rows
        .iter()
        .filter(|r| r.framework != Framework::LmOffload.name() && r.norm_tput > 1.0)
        .map(|r| format!("{} {} len={} ({:.2}x)", r.framework, r.model, r.gen_len, r.norm_tput))
        .collect();
    Summary {
        vs_flexgen: speedup_over(rows, Framework::FlexGen),
        vs_zero: speedup_over(rows, Framework::ZeroInference),
        baseline_wins,
    }
}

/// Run Table 3 at the given lengths and summarise.
pub fn run(gen_lengths: &[u64]) -> Summary {
    summarise(&table3::run(gen_lengths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets as models;

    #[test]
    fn headline_speedups_have_paper_shape() {
        // Subsample the table for test runtime; the full sweep runs in
        // the repro binary. Shape targets: mean >= ~1.3x over FlexGen,
        // max well above the mean.
        let mut rows = Vec::new();
        for len in [8u64, 64] {
            rows.extend(table3::run_cell(&models::opt_30b(), len));
            rows.extend(table3::run_cell(&models::llama_30b(), len));
        }
        let s = summarise(&rows);
        let fg = s.vs_flexgen.expect("FlexGen rows present");
        assert!(fg.mean > 1.2, "mean speedup {:.2}", fg.mean);
        assert!(fg.max >= fg.mean);
        let zero = s.vs_zero.expect("ZeRO rows present");
        assert!(zero.mean > 0.9, "vs ZeRO mean {:.2}", zero.mean);
    }

    #[test]
    fn summary_reports_baseline_wins_if_any() {
        // Not asserting a specific win (calibration-dependent); only that
        // the reporting path works and is consistent with norm_tput.
        let rows = table3::run_cell(&models::opt_30b(), 8);
        let s = summarise(&rows);
        let wins_from_rows = rows
            .iter()
            .filter(|r| r.framework != "LM-Offload" && r.norm_tput > 1.0)
            .count();
        assert_eq!(s.baseline_wins.len(), wins_from_rows);
    }
}
