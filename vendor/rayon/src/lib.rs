//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! The `par_*` entry points return ordinary sequential `std` iterators,
//! so every adaptor (`map`, `zip`, `enumerate`, `for_each`, `collect`,
//! …) keeps working with identical results. Parallel speed is traded
//! for having no dependency; the call sites need no changes to swap the
//! real rayon back in.

pub mod prelude {
    /// `par_iter` on shared slices.
    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// `par_iter_mut` / `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    /// `into_par_iter` on owned collections and ranges.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for Vec<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adaptors_behave_like_std() {
        let mut v = vec![1i32, 2, 3, 4, 5, 6];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, vec![2, 4, 6, 8, 10, 12]);
        let sums: Vec<i32> = v.par_chunks_mut(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![6, 14, 22]);
        let total: i32 = v.par_iter().sum();
        assert_eq!(total, 42);
        let doubled: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
    }
}
