//! Linear (fully-connected) layers, optionally held in quantized form —
//! the building block whose storage precision the LM-Offload policy
//! chooses per tensor class.

use crate::f16::F16Tensor;
use crate::ops::elementwise::add_bias;
use crate::ops::matmul::matmul_transb;
use crate::quant::{dequantize, quantize, QuantConfig, QuantizedTensor};
use crate::tensor::Tensor;

/// Weight storage for a linear layer: full precision or group-quantized.
///
/// Quantized storage models FlexGen's compressed weight format: the codes
/// live wherever the policy placed them and are dequantized at use — the
/// `dequan_wgt` cost of Eq. 4.
#[derive(Debug, Clone)]
pub enum WeightStore {
    Full(Tensor),
    /// Half precision at rest — the paper's fp16 baseline format.
    Half(F16Tensor),
    Quantized(QuantizedTensor),
}

impl WeightStore {
    /// Bytes at rest.
    pub fn bytes(&self) -> usize {
        match self {
            WeightStore::Full(t) => t.numel() * std::mem::size_of::<f32>(),
            WeightStore::Half(h) => h.bytes(),
            WeightStore::Quantized(q) => q.bytes(),
        }
    }

    /// Materialise full-precision weights (dequantizing/widening if
    /// needed).
    pub fn materialize(&self) -> Tensor {
        match self {
            WeightStore::Full(t) => t.clone(),
            WeightStore::Half(h) => h.to_f32(),
            WeightStore::Quantized(q) => dequantize(q),
        }
    }
}

/// A linear layer `y = x·Wᵀ + b` with `W: [out, in]`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub weight: WeightStore,
    pub bias: Option<Vec<f32>>,
    pub in_features: usize,
    pub out_features: usize,
}

impl Linear {
    /// A full-precision layer with Xavier-initialised weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, seed: u64) -> Self {
        Linear {
            weight: WeightStore::Full(Tensor::xavier(out_features, in_features, seed)),
            bias: bias.then(|| vec![0.0; out_features]),
            in_features,
            out_features,
        }
    }

    /// Convert the weights to group-quantized storage in place.
    pub fn quantize_weights(&mut self, config: QuantConfig) {
        if let WeightStore::Full(t) = &self.weight {
            self.weight = WeightStore::Quantized(quantize(t, config));
        }
    }

    /// Convert the weights to half-precision storage in place (fp16 at
    /// rest, widened to f32 at use).
    pub fn halve_weights(&mut self) {
        if let WeightStore::Full(t) = &self.weight {
            self.weight = WeightStore::Half(F16Tensor::from_f32(t));
        }
    }

    /// Apply to `x: [batch, in]`, returning `[batch, out]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "Linear::forward expects [batch, in]");
        assert_eq!(x.dim(1), self.in_features, "in_features mismatch");
        let w = self.weight.materialize();
        let mut y = matmul_transb(x, &w);
        if let Some(b) = &self.bias {
            add_bias(&mut y, b);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let l = Linear::new(8, 16, true, 1);
        let x = Tensor::randn([4, 8], 1.0, 2);
        let y = l.forward(&x);
        assert_eq!(y.shape().0, vec![4, 16]);
    }

    #[test]
    fn quantized_forward_close_to_full() {
        let mut l = Linear::new(32, 32, false, 3);
        let x = Tensor::randn([2, 32], 1.0, 4);
        let full = l.forward(&x);
        l.quantize_weights(QuantConfig::int8());
        let quant = l.forward(&x);
        // int8 on unit-scale weights: error well under 1% of magnitude.
        let rel = quant.max_abs_diff(&full)
            / full.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn quantized_storage_is_smaller() {
        let mut l = Linear::new(128, 128, false, 5);
        let before = l.weight.bytes();
        l.quantize_weights(QuantConfig::int4());
        let after = l.weight.bytes();
        assert!(after * 6 < before, "{after} vs {before}");
    }

    #[test]
    fn quantize_is_idempotent_on_storage() {
        let mut l = Linear::new(16, 16, false, 6);
        l.quantize_weights(QuantConfig::int4());
        let once = l.weight.bytes();
        l.quantize_weights(QuantConfig::int4()); // no-op on quantized store
        assert_eq!(l.weight.bytes(), once);
    }

    #[test]
    fn half_precision_storage_halves_bytes_and_stays_close() {
        let mut l = Linear::new(64, 64, false, 9);
        let x = Tensor::randn([2, 64], 1.0, 10);
        let full = l.forward(&x);
        let before = l.weight.bytes();
        l.halve_weights();
        assert_eq!(l.weight.bytes() * 2, before);
        let half = l.forward(&x);
        let scale = full.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(half.max_abs_diff(&full) < 0.01 * scale.max(1.0));
    }

    #[test]
    fn bias_applied() {
        let mut l = Linear::new(2, 2, true, 7);
        if let Some(b) = &mut l.bias {
            b[0] = 1.0;
            b[1] = -1.0;
        }
        let zero = Tensor::zeros([1, 2]);
        let y = l.forward(&zero);
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }
}
