//! # lm-serve
//!
//! A deterministic continuous-batching serving layer over the offloading
//! engine (DESIGN.md §11): independent, ragged-length requests are
//! admitted into the zig-zag block schedule so the per-layer weight
//! stream — the dominant cost of offloaded generation (Eq. 2) — is
//! amortised across whoever is active, instead of being re-paid per
//! request.
//!
//! Pieces:
//!
//! - [`request`]: the [`Request`]/[`Response`] vocabulary (priority,
//!   deadline, seed), typed [`Rejection`]s, the virtual-clock
//!   [`ArrivalQueue`], and the seeded [`synth_traffic`] generator;
//! - [`backend`]: the [`ServeBackend`] substrate split — tokens are a
//!   deterministic function of the request alone (proved by the zig-zag
//!   equivalence tests), timing comes from the analytic cost model —
//!   with [`AnalyticBackend`] (OPT-30B-class) and [`EngineBackend`]
//!   (real miniature engine) implementations;
//! - [`admission`]: the model-guided admission controller producing an
//!   `LMA25x`-linted [`ServePlan`] (slots vs KV pool headroom vs the
//!   block graph's Kahn width);
//! - [`scheduler`]: the continuous scheduler core and its two baselines,
//!   all parameterized over the [`driver`] clock/transport split;
//! - [`session`]: the unified serve API — [`ServeSession`] subsumes the
//!   deprecated `serve_*` free functions behind one builder (mode,
//!   backend, SLO policy, fault plan, observability sinks) and adds the
//!   real-time front end [`ServeSession::run_async`]: wall-clock pacing
//!   ([`AsyncConfig::time_scale`]), per-request bounded tokio token
//!   channels, disconnect-on-drop, and `LMA30x` pre-flight;
//! - [`slo`]: the overload-protection layer (DESIGN.md §12) — the
//!   [`SloPolicy`] objective, the model-driven [`TtftModel`] predictor,
//!   and the [`DegradeLadder`] the scheduler climbs when preemption
//!   alone cannot hold the objective. Cancellation
//!   ([`CancelToken`] → terminal [`Cancellation`]) and slot crashes
//!   reclaim KV leases mid-generation; chaos storms drive all of it
//!   deterministically;
//! - [`obs`]: serve-path observability (DESIGN.md §13) — the per-request
//!   lifecycle record and per-boundary samples collected into
//!   [`ServeObs`], the predicted-vs-observed drift audit
//!   ([`ServeObs::audit`]), and the Perfetto serve timeline
//!   ([`serve_timeline`], one track per slot).
//!
//! Everything runs on a virtual clock in integer microseconds; a serving
//! run is a pure function of `(requests, backend, config)` — identical
//! across runs and machines, which is what makes the `repro serve`
//! experiment reproducible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod admission;
pub mod backend;
pub mod driver;
pub mod obs;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod slo;

pub use admission::{
    derive_plan, plan_admission, slo_probe, KvMode, ServeConfig, ServeError, ServePlan,
};
pub use obs::{
    obs_probe, serve_timeline, BoundaryObs, LifecycleEvent, RequestPhase, ServeObs, TtftSample,
};
pub use backend::{AnalyticBackend, EngineBackend, ServeBackend};
pub use request::{
    synth_shared_prefix_traffic, synth_traffic, ArrivalQueue, CancelReason, CancelToken,
    Cancellation, RejectReason, Rejection, Request, Response,
};
pub use driver::{Delivery, NullDriver, ServeDriver, VirtualDriver};
#[allow(deprecated)]
pub use scheduler::{
    serve_continuous, serve_continuous_with, serve_sequential, serve_static, ServeOutcome,
    ServeStats, TokenEvent,
};
pub use session::{AsyncConfig, ServeMode, ServeRun, ServeSession, TokenStreams};
pub use slo::{DegradeLadder, DegradeRung, SloPolicy, StaticLadder, TtftModel};
