//! Pipeline-parallel multi-GPU simulation (§5.5, Fig. 9).
//!
//! Layers are split into one stage per GPU; the zig-zag block's batches
//! flow through the stages as micro-batches. Host resources (the CPU
//! threads doing offloaded attention and transfer staging) are *shared*
//! by all stages — the contention term that separates LM-Offload's
//! per-stage thread partitioning from FlexGen's default threading as the
//! GPU count grows.

use crate::tasks::CostProvider;
use lm_fault::FaultInjector;
use lm_models::Workload;
use serde::{Deserialize, Serialize};

/// Result of a pipeline-parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    pub num_gpus: u32,
    /// Seconds per decode step in steady state.
    pub step_time: f64,
    /// Decode-phase time for the whole generation.
    pub decode_time: f64,
    /// Tokens generated.
    pub tokens: u64,
    /// Aggregate throughput, tokens/second.
    pub throughput: f64,
    /// Pipeline-fill overhead fraction (idle bubbles).
    pub bubble_fraction: f64,
}

/// CPU-sharing contention multiplier applied to the CPU-side task times of
/// each stage when `num_gpus` stages share the host.
///
/// `per_stage_threads` = true models LM-Offload's controller, which
/// partitions the host threads across stages (near-flat contention);
/// false models default threading where every stage's operators fight
/// over all threads (superlinear contention).
pub fn host_contention(num_gpus: u32, per_stage_threads: bool) -> f64 {
    let g = num_gpus as f64;
    if per_stage_threads {
        // Partitioned: each stage gets 1/G of the threads, but attention
        // work per stage also shrinks with layers/G, so contention is a
        // mild constant factor for coordination.
        1.0 + 0.05 * (g - 1.0)
    } else {
        // Oversubscribed: every stage launches operators over all
        // threads; cache thrash and scheduler churn compound.
        1.0 + 0.45 * (g - 1.0)
    }
}

/// Simulate pipeline-parallel decode. The provider describes *one layer*
/// of cost on one GPU (as in the single-GPU simulator); this function
/// aggregates stages of `num_layers / num_gpus` layers with shared-host
/// contention on CPU-side tasks.
pub fn simulate_pipeline(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    num_gpus: u32,
    per_stage_threads: bool,
) -> PipelineReport {
    pipeline_impl(provider, w, num_layers, num_gpus, per_stage_threads, None)
}

/// Like [`simulate_pipeline`], with an attached fault injector: per
/// decode step, the stage links may run degraded (`"sim.h2d"` /
/// `"sim.d2h"` sites, keyed by step) and the weight stream may stall.
/// A disabled injector reproduces [`simulate_pipeline`] bit-for-bit.
pub fn simulate_pipeline_faulted(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    num_gpus: u32,
    per_stage_threads: bool,
    fault: &FaultInjector,
) -> PipelineReport {
    pipeline_impl(
        provider,
        w,
        num_layers,
        num_gpus,
        per_stage_threads,
        Some(fault),
    )
}

fn pipeline_impl(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    num_gpus: u32,
    per_stage_threads: bool,
    fault: Option<&FaultInjector>,
) -> PipelineReport {
    assert!(num_gpus >= 1, "need at least one GPU");
    assert!(
        num_layers >= num_gpus,
        "fewer layers than pipeline stages"
    );
    let layers_per_stage = (num_layers as f64 / num_gpus as f64).ceil();
    let nb = w.num_batches.max(1) as f64;
    let contention = host_contention(num_gpus, per_stage_threads);
    let decode_steps = w.gen_len.saturating_sub(1);

    // Steady-state: with nb micro-batches in flight, each decode step's
    // time is governed by the slowest stage; pipeline fill/drain adds
    // (G-1)/nb bubbles per step.
    let bubble = (num_gpus as f64 - 1.0) / nb;
    let mut decode_time = 0.0;
    for i in 0..decode_steps {
        // Injected link misbehaviour for this step (bit-identical no-op
        // multipliers when faults are off).
        let mut h2d_stretch = 1.0;
        let mut d2h_stretch = 1.0;
        let mut stall_s = 0.0;
        if let Some(fi) = fault {
            if let Some(factor) = fi.bandwidth_factor("sim.h2d", i) {
                h2d_stretch = 1.0 / factor.max(1e-9);
            }
            if let Some(factor) = fi.bandwidth_factor("sim.d2h", i) {
                d2h_stretch = 1.0 / factor.max(1e-9);
            }
            if let Some(stall) = fi.transfer_stall("sim.h2d", i) {
                stall_s = stall.as_secs_f64();
            }
        }
        // Per-(layer, batch) task times; CPU-side tasks pay contention.
        // Every host-side task — offloaded attention *and* the transfer
        // staging copies feeding the links — contends for the shared CPU.
        let cpu_side = provider.compute_cpu(i) * contention;
        let link_loads =
            (provider.load_cache(i) + provider.load_activation(i)) * contention * h2d_stretch;
        let link_stores =
            (provider.store_cache(i) + provider.store_activation(i)) * contention * d2h_stretch;
        let gpu_side = provider.compute_gpu(i);
        let weights = provider.load_weight(i) * contention * h2d_stretch + stall_s;
        // Per-stage step time: per-batch tasks serialise over nb batches,
        // weights stream once per layer.
        let stage = layers_per_stage
            * (weights.max(link_loads * nb).max(link_stores * nb).max((cpu_side + gpu_side) * nb));
        decode_time += stage * (1.0 + bubble);
    }
    let prefill = provider.prefill_layer() * layers_per_stage * (1.0 + bubble);
    let tokens = w.tokens_generated();
    let total = prefill + decode_time;
    PipelineReport {
        num_gpus,
        step_time: if decode_steps > 0 {
            decode_time / decode_steps as f64
        } else {
            0.0
        },
        decode_time,
        tokens,
        throughput: tokens as f64 / total.max(f64::MIN_POSITIVE),
        bubble_fraction: bubble / (1.0 + bubble),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::BaseCostModel;
    use crate::policy::Policy;
    use lm_hardware::presets;
    use lm_models::presets as models;

    /// Fig. 9's setup: OPT-13B, s=256, n=64, weak scaling (batch doubles
    /// with GPU count).
    fn weak_scaling_workload(num_gpus: u32) -> Workload {
        Workload::new(256, 64, 8 * num_gpus as u64, 4)
    }

    fn model(num_gpus: u32) -> BaseCostModel {
        BaseCostModel::new(
            &presets::multi_gpu_v100(num_gpus),
            &models::opt_13b(),
            &weak_scaling_workload(num_gpus),
            Policy::flexgen_default(),
        )
    }

    #[test]
    fn host_contention_shapes() {
        // Partitioned threading stays near-flat; shared threading
        // compounds with GPU count; both are 1.0 on a single stage.
        assert_eq!(host_contention(1, true), 1.0);
        assert_eq!(host_contention(1, false), 1.0);
        for g in 2..=4 {
            let part = host_contention(g, true);
            let shared = host_contention(g, false);
            assert!(part < shared, "g={g}");
            assert!(part < 1.25, "partitioned must stay mild: {part}");
        }
        assert!(host_contention(4, false) > host_contention(2, false));
    }

    #[test]
    fn weak_scaling_throughput_grows() {
        let mut last = 0.0;
        for g in 1..=4 {
            let m = model(g);
            let r = simulate_pipeline(&m, &m.workload, m.model.num_layers, g, true);
            assert!(
                r.throughput > last,
                "throughput must grow under weak scaling: g={g}, {} vs {last}",
                r.throughput
            );
            last = r.throughput;
        }
    }

    #[test]
    fn partitioned_threads_beat_shared_threads_and_gap_grows() {
        let mut last_gap = 0.0;
        for g in [2u32, 4] {
            let m = model(g);
            let tuned = simulate_pipeline(&m, &m.workload, m.model.num_layers, g, true);
            let default = simulate_pipeline(&m, &m.workload, m.model.num_layers, g, false);
            let gap = tuned.throughput / default.throughput;
            assert!(gap > 1.0, "g={g}: tuned must win ({gap})");
            assert!(gap > last_gap, "gap must grow with GPUs");
            last_gap = gap;
        }
    }

    #[test]
    fn bubbles_shrink_with_more_microbatches() {
        let m = model(4);
        let few = Workload::new(256, 64, 8, 2);
        let many = Workload::new(256, 64, 8, 16);
        let r_few = simulate_pipeline(&m, &few, 40, 4, true);
        let r_many = simulate_pipeline(&m, &many, 40, 4, true);
        assert!(r_many.bubble_fraction < r_few.bubble_fraction);
    }

    #[test]
    fn single_gpu_pipeline_matches_no_bubbles() {
        let m = model(1);
        let r = simulate_pipeline(&m, &m.workload, m.model.num_layers, 1, true);
        assert_eq!(r.bubble_fraction, 0.0);
        assert_eq!(r.num_gpus, 1);
    }

    #[test]
    fn faulted_pipeline_slows_and_disabled_matches_exactly() {
        use lm_fault::{FaultConfig, FaultInjector};
        let m = model(2);
        let clean = simulate_pipeline(&m, &m.workload, m.model.num_layers, 2, true);
        let off = simulate_pipeline_faulted(
            &m,
            &m.workload,
            m.model.num_layers,
            2,
            true,
            &FaultInjector::disabled(),
        );
        assert_eq!(clean.decode_time, off.decode_time);
        assert_eq!(clean.throughput, off.throughput);
        let fault = FaultInjector::new(FaultConfig {
            link_degrade_rate: 0.5,
            link_degrade_factor: 0.25,
            ..FaultConfig::quiescent(23)
        });
        let degraded =
            simulate_pipeline_faulted(&m, &m.workload, m.model.num_layers, 2, true, &fault);
        assert!(degraded.decode_time > clean.decode_time);
        assert!(fault.stats().link_degrades > 0);
    }

    #[test]
    #[should_panic(expected = "fewer layers than pipeline stages")]
    fn too_many_stages_rejected() {
        let m = model(2);
        simulate_pipeline(&m, &m.workload, 1, 2, true);
    }
}
