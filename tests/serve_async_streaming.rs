//! The serve-API-redesign contract (DESIGN.md §16), end to end:
//!
//! 1. The clock/transport split is an exact identity on the virtual
//!    path — regenerating the `repro serve --shared-prefix` artifact
//!    through `ServeSession` must reproduce the committed
//!    `results/serve.json` byte for byte;
//! 2. The real-time path (`ServeSession::run_async`) changes *when*
//!    tokens arrive, never *which*: for random ragged traffic on the
//!    real miniature engine, every streamed token sequence equals the
//!    solo `Engine::run` of its request, and total resolution and KV
//!    reclamation hold even when clients disconnect mid-stream.
#![allow(clippy::unwrap_used)]

use lm_bench::experiments::serve;
use lm_engine::GenerateRequest;
use lm_serve::{AsyncConfig, EngineBackend, Request, ServeSession};
use proptest::prelude::*;

/// Regenerate the default serve artifact (both the plain run and the
/// shared-prefix study, exactly as `repro serve --rps 4 --requests 32
/// --seed 7 --shared-prefix` assembles it) and compare it byte for byte
/// against the committed golden. This is the redesign's load-bearing
/// promise: swapping the four free functions for `ServeSession` +
/// `ServeDriver` changed no virtual-clock byte.
#[test]
fn virtual_clock_serve_artifact_matches_the_committed_golden_bytes() {
    let mut r = serve::run(7, 4.0, 32);
    r.shared_prefix = Some(serve::run_shared_prefix(
        7,
        4.0,
        32,
        serve::DEFAULT_PREFIX_LEN,
    ));
    let regenerated = serde_json::to_string_pretty(&r).unwrap();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/serve.json"
    ))
    .expect("results/serve.json is committed");
    assert_eq!(
        regenerated, golden,
        "the virtual-clock serve path drifted from the committed golden artifact"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Async output transparency for arbitrary ragged traffic: each
    /// surviving stream carries exactly the solo-run tokens; dropped
    /// streams resolve without leaking a page.
    #[test]
    fn async_streams_are_output_transparent_for_random_traffic(
        n in 2usize..6,
        traffic_seed in 0u64..500,
        engine_seed in 0u64..16,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let backend = EngineBackend::tiny_test(engine_seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(traffic_seed);
        let requests: Vec<Request> = (0..n)
            .map(|i| {
                let plen = rng.gen_range(1usize..16);
                let glen = rng.gen_range(1usize..8);
                let prompt: Vec<u32> =
                    (0..plen as u32).map(|t| 1 + (t * 11 + i as u32) % 100).collect();
                Request::new(i as u64, prompt, glen)
                    .with_arrival_us(rng.gen_range(0u64..200_000))
            })
            .collect();
        // A large scale makes pacing instantaneous: the property is
        // about token values, not wall timing.
        let acfg = AsyncConfig { time_scale: 1e6, ..AsyncConfig::default() };
        let session = ServeSession::new(&backend);
        let (run, collected) = session
            .run_async(requests.clone(), &acfg, |mut streams| {
                let mut collected = Vec::new();
                for (id, mut rx) in streams.drain() {
                    // Drop one receiver mid-setup when there are enough
                    // requests: an immediate disconnect.
                    if n >= 4 && id == 1 {
                        continue;
                    }
                    let mut tokens = Vec::new();
                    while let Some(ev) = rx.blocking_recv() {
                        tokens.push(ev.token);
                    }
                    collected.push((id, tokens));
                }
                collected
            })
            .unwrap();
        let out = run.outcome;
        prop_assert_eq!(out.terminal_count(), n);
        prop_assert_eq!(out.kv_leaked_bytes, 0);
        prop_assert_eq!(out.kv_pages_leaked, 0);
        for r in &out.responses {
            let req = &requests[r.id as usize];
            let solo = backend
                .engine()
                .run(&GenerateRequest::new(vec![req.prompt.clone()], req.gen_len))
                .unwrap();
            prop_assert_eq!(&r.tokens, &solo.tokens[0], "response {} vs solo", r.id);
            if let Some((_, streamed)) = collected.iter().find(|(id, _)| *id == r.id) {
                prop_assert_eq!(streamed, &r.tokens, "stream {} vs response", r.id);
            }
        }
    }
}
