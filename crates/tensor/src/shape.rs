//! Shape bookkeeping for dense row-major tensors.

/// A tensor shape: dimension sizes in row-major order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `d`, panicking on out-of-range.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .zip(&self.0)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of size {d}");
                i * s
            })
            .sum()
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }
}
