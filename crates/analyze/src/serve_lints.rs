//! Serving-configuration lints (`LMA25x`).
//!
//! The `lm-serve` admission controller turns a request queue into a slot
//! plan: how many concurrent sequences hold KV leases, how many compose
//! one engine block, and how much of the KV pool that claims. A bad plan
//! does not crash immediately — it either deadlocks admission (leases
//! that can never all be granted) or quietly serves below capacity. These
//! lints judge a sampled [`ServeProbe`] the same way `model_lints` judges
//! a [`ModelProbe`](crate::ModelProbe):
//!
//! - the leased bytes must fit the pool (`LMA250`: a plan whose slots
//!   cannot all hold a lease at once stalls at the block boundary);
//! - the per-block batch must not exceed the block graph's Kahn width
//!   (`LMA251`: scheduling more sequences per step than the dependency
//!   structure admits just serialises them with extra padding);
//! - a plan that leaves more than half of the pool idle while another
//!   slot would fit is flagged (`LMA252`, warning: throughput left on
//!   the table).
//!
//! The probe is a plain value: `lm-serve` samples it from a live plan,
//! mutation tests corrupt fields directly, and `repro analyze` checks the
//! default serving configuration — all without this crate depending on
//! the serving crate.
//!
//! The `LMA26x` family judges an SLO/overload policy the same way via
//! [`SloProbe`]: an objective below the physical service floor
//! (`LMA260`) can never be met; enforcement with every actuator disabled
//! (`LMA261`) silently does nothing; preemption on a one-slot plan
//! (`LMA262`) thrashes the only slot.

use crate::diag::{Diagnostic, LintCode, Report};
use serde::{Deserialize, Serialize};

/// Observations sampled from one `lm-serve` slot plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeProbe {
    /// Concurrent sequences the plan admits (each holds one KV lease).
    pub slots: u64,
    /// Worst-case KV bytes one slot leases (prompt + full generation).
    pub kv_bytes_per_slot: u64,
    /// Capacity of the serve-owned KV `MemPool`, bytes.
    pub kv_pool_bytes: u64,
    /// Sequences composed into one engine block step.
    pub block_size: u64,
    /// Kahn width (max concurrency) of the block-level operator graph.
    pub kahn_width: u64,
}

/// Run every serving lint over a sampled probe.
pub fn lint_serve(probe: &ServeProbe) -> Report {
    let mut out = Vec::new();

    // LMA250: every slot must be able to hold its lease simultaneously —
    // the scheduler retires leases only at block boundaries, so a plan
    // that oversubscribes the pool stalls with slots waiting on bytes
    // that are never coming back mid-block.
    let leased = probe.slots.saturating_mul(probe.kv_bytes_per_slot);
    if leased > probe.kv_pool_bytes {
        out.push(Diagnostic::error(
            LintCode::Lma250SlotsExceedPool,
            "plan.slots".to_string(),
            format!(
                "{} slots x {} B/slot = {leased} B exceed the {} B KV pool",
                probe.slots, probe.kv_bytes_per_slot, probe.kv_pool_bytes
            ),
        ));
    }

    // LMA251: the block-level graph bounds how many sequences one step
    // can actually run concurrently (Algorithm 3's width argument applied
    // to the serving block). A larger batch only adds padding.
    if probe.block_size > probe.kahn_width {
        out.push(Diagnostic::error(
            LintCode::Lma251BlockExceedsWidth,
            "plan.block_size".to_string(),
            format!(
                "block of {} sequences exceeds the block graph's Kahn \
                 width {}",
                probe.block_size, probe.kahn_width
            ),
        ));
    }

    // LMA252: the dual of LMA250 — admission chose so few slots that more
    // than half the pool sits idle even though at least one more lease
    // would fit. Not an error (the operator may be reserving headroom for
    // longer contexts), but worth surfacing.
    if probe.kv_bytes_per_slot > 0
        && leased <= probe.kv_pool_bytes
        && leased < probe.kv_pool_bytes / 2
        && probe.kv_pool_bytes - leased >= probe.kv_bytes_per_slot
    {
        out.push(Diagnostic::warn(
            LintCode::Lma252SlotsUnderutilizePool,
            "plan.slots".to_string(),
            format!(
                "{} slots lease {leased} B of a {} B pool (< 50%) while \
                 another {} B slot would fit",
                probe.slots, probe.kv_pool_bytes, probe.kv_bytes_per_slot
            ),
        ));
    }

    Report::new(out)
}

/// Observations sampled from one `lm-serve` SLO policy + plan pairing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloProbe {
    /// Configured p99 TTFT objective, seconds.
    pub ttft_p99_slo_s: f64,
    /// Physical service floor: one group prefill plus one decode step at
    /// planned occupancy, seconds. No admitted request's first token can
    /// land faster.
    pub floor_ttft_s: f64,
    /// Slots in the admission plan.
    pub slots: u64,
    /// Whether the policy acts on predicted violations at all.
    pub enforce: bool,
    /// Preemption actuator armed.
    pub preempt: bool,
    /// Load-shedding actuator armed.
    pub shed: bool,
    /// Rungs available on the attached degrade ladder (0 = none).
    pub degrade_rungs: u64,
}

/// Run every SLO-policy lint over a sampled probe.
pub fn lint_slo(probe: &SloProbe) -> Report {
    let mut out = Vec::new();

    // LMA260: the objective must sit above the floor the cost model
    // charges for even an immediately-admitted request; otherwise every
    // boundary is a predicted violation and the actuators flail.
    if probe.ttft_p99_slo_s <= probe.floor_ttft_s || !probe.ttft_p99_slo_s.is_finite() {
        out.push(Diagnostic::error(
            LintCode::Lma260SloBelowFloor,
            "slo.ttft_p99_s".to_string(),
            format!(
                "p99 TTFT objective {:.3}s is at or below the physical \
                 service floor {:.3}s (one prefill + one step)",
                probe.ttft_p99_slo_s, probe.floor_ttft_s
            ),
        ));
    }

    // LMA261: enforcement with no actuator is a misconfiguration — the
    // monitor predicts violations and then has no lever to pull.
    if probe.enforce && !probe.preempt && !probe.shed && probe.degrade_rungs == 0 {
        out.push(Diagnostic::error(
            LintCode::Lma261SloNoActuator,
            "slo.enforce".to_string(),
            "SLO enforcement enabled but preemption, shedding, and the \
             degrade ladder are all disabled"
                .to_string(),
        ));
    }

    // LMA262: with one slot, preemption evicts the only running request
    // to admit another of the same service time — pure churn. Warning:
    // the policy still terminates (resumes are exact), it just cannot
    // help.
    if probe.preempt && probe.slots <= 1 {
        out.push(Diagnostic::warn(
            LintCode::Lma262PreemptSingleSlot,
            "slo.preempt".to_string(),
            format!(
                "preemption armed on a {}-slot plan: evicting the only \
                 slot adds churn, not capacity",
                probe.slots
            ),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound() -> ServeProbe {
        ServeProbe {
            slots: 8,
            kv_bytes_per_slot: 1 << 20,
            kv_pool_bytes: 10 << 20,
            block_size: 8,
            kahn_width: 8,
        }
    }

    #[test]
    fn sound_plan_is_clean() {
        let r = lint_serve(&sound());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn oversubscribed_pool_caught() {
        let mut p = sound();
        p.slots = 11;
        let r = lint_serve(&p);
        assert!(r.has(LintCode::Lma250SlotsExceedPool), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn block_beyond_kahn_width_caught() {
        let mut p = sound();
        p.kahn_width = 4;
        let r = lint_serve(&p);
        assert!(r.has(LintCode::Lma251BlockExceedsWidth), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn idle_pool_warned_but_not_fatal() {
        let mut p = sound();
        p.slots = 2;
        p.block_size = 2;
        let r = lint_serve(&p);
        assert!(r.has(LintCode::Lma252SlotsUnderutilizePool), "{r}");
        assert!(r.is_clean(), "underutilization is a warning: {r}");
    }

    #[test]
    fn tight_fit_is_not_underutilization() {
        // 5 slots of a 10-slot pool is exactly 50% — below the warning
        // threshold's strict inequality, no finding.
        let mut p = sound();
        p.slots = 5;
        p.block_size = 5;
        let r = lint_serve(&p);
        assert!(!r.has(LintCode::Lma252SlotsUnderutilizePool), "{r}");
    }

    #[test]
    fn saturating_lease_math_does_not_wrap() {
        let mut p = sound();
        p.slots = u64::MAX;
        p.kv_bytes_per_slot = u64::MAX;
        let r = lint_serve(&p);
        assert!(r.has(LintCode::Lma250SlotsExceedPool), "{r}");
    }

    #[test]
    fn probe_serializes() {
        let json = serde_json::to_string(&sound()).expect("serialize");
        assert!(json.contains("kahn_width"), "{json}");
    }

    fn sound_slo() -> SloProbe {
        SloProbe {
            ttft_p99_slo_s: 400.0,
            floor_ttft_s: 12.0,
            slots: 8,
            enforce: true,
            preempt: true,
            shed: true,
            degrade_rungs: 4,
        }
    }

    #[test]
    fn sound_slo_is_clean() {
        let r = lint_slo(&sound_slo());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn objective_below_floor_caught() {
        let mut p = sound_slo();
        p.ttft_p99_slo_s = 10.0;
        let r = lint_slo(&p);
        assert!(r.has(LintCode::Lma260SloBelowFloor), "{r}");
        assert!(!r.is_clean());
        // Non-finite objectives land in the same bucket.
        p.ttft_p99_slo_s = f64::NAN;
        assert!(lint_slo(&p).has(LintCode::Lma260SloBelowFloor));
    }

    #[test]
    fn enforcement_without_actuators_caught() {
        let mut p = sound_slo();
        p.preempt = false;
        p.shed = false;
        p.degrade_rungs = 0;
        let r = lint_slo(&p);
        assert!(r.has(LintCode::Lma261SloNoActuator), "{r}");
        // Observe mode with no actuators is fine — nothing was promised.
        p.enforce = false;
        assert!(lint_slo(&p).is_clean());
    }

    #[test]
    fn single_slot_preemption_warned_not_fatal() {
        let mut p = sound_slo();
        p.slots = 1;
        let r = lint_slo(&p);
        assert!(r.has(LintCode::Lma262PreemptSingleSlot), "{r}");
        assert!(r.is_clean(), "churn warning must not be fatal: {r}");
    }

    #[test]
    fn slo_probe_serializes() {
        let json = serde_json::to_string(&sound_slo()).expect("serialize");
        assert!(json.contains("degrade_rungs"), "{json}");
    }
}
