//! The six decode-phase tasks of Algorithm 1 — the shared vocabulary of
//! the analytic model, the simulator, the real engine and the tracer.
//! (Moved here from `lm-sim::tasks` so tracing does not depend on the
//! simulator; `lm-sim` re-exports it unchanged.)

use serde::{Deserialize, Serialize};

/// The decode-phase task kinds. `ComputeCpu`/`ComputeGpu` split the
/// paper's `compute` task by device: offloaded attention runs on the CPU
/// while projections/MLP (and attention, when not offloaded) run on GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    LoadWeight,
    LoadCache,
    LoadActivation,
    StoreCache,
    StoreActivation,
    ComputeCpu,
    ComputeGpu,
}

impl TaskKind {
    /// All kinds, in reporting order (Fig. 8's x-axis plus the compute
    /// split).
    pub const ALL: [TaskKind; 7] = [
        TaskKind::LoadWeight,
        TaskKind::LoadCache,
        TaskKind::LoadActivation,
        TaskKind::StoreCache,
        TaskKind::StoreActivation,
        TaskKind::ComputeCpu,
        TaskKind::ComputeGpu,
    ];

    /// The paper's six canonical decode tasks (Eq. 2's `max(...)` terms):
    /// both compute halves report under `compute`.
    pub const PAPER_TASKS: [&'static str; 6] = [
        "load_weight",
        "load_cache",
        "load_activation",
        "store_cache",
        "store_activation",
        "compute",
    ];

    pub fn name(self) -> &'static str {
        match self {
            TaskKind::LoadWeight => "load_weight",
            TaskKind::LoadCache => "load_cache",
            TaskKind::LoadActivation => "load_activation",
            TaskKind::StoreCache => "store_cache",
            TaskKind::StoreActivation => "store_activation",
            TaskKind::ComputeCpu => "compute_cpu",
            TaskKind::ComputeGpu => "compute_gpu",
        }
    }

    /// The hardware resource this task occupies.
    pub fn resource(self) -> &'static str {
        match self {
            TaskKind::LoadWeight | TaskKind::LoadCache | TaskKind::LoadActivation => "H2D",
            TaskKind::StoreCache | TaskKind::StoreActivation => "D2H",
            TaskKind::ComputeCpu => "CPU",
            TaskKind::ComputeGpu => "GPU",
        }
    }

    /// The paper task this kind reports under in drift reports: itself,
    /// except the compute halves, which merge into `compute`.
    pub fn paper_task(self) -> &'static str {
        match self {
            TaskKind::ComputeCpu | TaskKind::ComputeGpu => "compute",
            other => other.name(),
        }
    }

    /// Position in [`TaskKind::ALL`] — stable indexing for accumulators.
    pub fn index(self) -> usize {
        match self {
            TaskKind::LoadWeight => 0,
            TaskKind::LoadCache => 1,
            TaskKind::LoadActivation => 2,
            TaskKind::StoreCache => 3,
            TaskKind::StoreActivation => 4,
            TaskKind::ComputeCpu => 5,
            TaskKind::ComputeGpu => 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_unique() {
        let names: std::collections::HashSet<_> = TaskKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), TaskKind::ALL.len());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, k) in TaskKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn paper_tasks_cover_every_kind() {
        for k in TaskKind::ALL {
            assert!(
                TaskKind::PAPER_TASKS.contains(&k.paper_task()),
                "{} not a paper task",
                k.paper_task()
            );
        }
        assert_eq!(TaskKind::ComputeCpu.paper_task(), "compute");
        assert_eq!(TaskKind::ComputeGpu.paper_task(), "compute");
        assert_eq!(TaskKind::LoadWeight.paper_task(), "load_weight");
    }

    #[test]
    fn serde_round_trip() {
        for k in TaskKind::ALL {
            let v = serde::Serialize::serialize(&k);
            let back: TaskKind = serde::Deserialize::deserialize(&v).unwrap();
            assert_eq!(back, k);
        }
    }
}
