//! Tracing & drift experiment — the observability counterpart of the
//! paper tables: exercise the unified `lm-trace` layer end to end and
//! quantify how well the analytic cost model predicts what actually ran.
//!
//! Two phases, two artifacts:
//!
//! 1. **Sim drift golden** (`results/trace_drift.json`): run the
//!    event-driven simulator with span tracing on a paper-scale policy
//!    that exercises all six decode tasks (GPU attention, so the KV
//!    cache crosses the links), replay the analytic model over the same
//!    schedule with `predicted_task_totals`, and report per-task
//!    observed/predicted ratios. Because the simulator *is* the model
//!    executed against FIFO resources, every ratio must be 1.0 — the
//!    golden property the integration tests pin. Against the real engine
//!    the same report form measures genuine model error.
//! 2. **Engine timeline** (`results/trace.json`): a real traced
//!    zig-zag `Engine::run` exported as Chrome/Perfetto trace
//!    JSON — `load_weight` spans from the prefetch loader thread,
//!    compute spans per (step, layer, batch), prefill/decode scopes, and
//!    the run's metrics snapshot.

use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_models::{presets as models, Workload};
use lm_sim::policy::{AttentionPlacement, Policy};
use lm_sim::{predicted_task_totals, simulate_traced, BaseCostModel};
use lm_trace::{drift_report, DriftReport, MetricsSnapshot, PerfettoTrace, TaskKind, Tracer};
use serde::{Deserialize, Serialize};

/// Default token count when `--tokens` is not given.
pub const DEFAULT_TOKENS: u64 = 8;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimDriftPhase {
    /// Decode steps traced (= tokens - 1).
    pub steps: u64,
    /// Task spans recorded by the simulator.
    pub spans: usize,
    /// Simulated decode makespan, seconds.
    pub decode_s: f64,
    pub drift: DriftReport,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineTracePhase {
    pub tokens_generated: u64,
    /// Task spans in the real timeline (load_weight + compute).
    pub spans: usize,
    /// prefill/decode scopes.
    pub scopes: usize,
    /// Observed busy seconds summed over `load_weight` spans.
    pub load_weight_s: f64,
    /// Observed busy seconds summed over compute spans.
    pub compute_s: f64,
    /// Events in the exported Perfetto document.
    pub perfetto_events: usize,
    pub metrics: MetricsSnapshot,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceResult {
    pub tokens: u64,
    pub sim: SimDriftPhase,
    pub engine: EngineTracePhase,
}

/// Phase 1: simulator drift on a policy that exercises all six tasks.
pub fn sim_drift(tokens: u64) -> SimDriftPhase {
    let platform = lm_hardware::presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::new(64, tokens.max(2), 16, 2);
    let mut policy = Policy::flexgen_default();
    // GPU attention sends the KV cache across both links: all six paper
    // tasks appear in the schedule.
    policy.attention = AttentionPlacement::Gpu;
    let m = BaseCostModel::new(&platform, &model, &w, policy);
    let steps = w.gen_len - 1;
    let (report, spans) = simulate_traced(&m, &w, model.num_layers, steps);
    let predicted = predicted_task_totals(&m, &w, model.num_layers, steps);
    let drift = drift_report(&predicted, &spans);
    SimDriftPhase {
        steps,
        spans: spans.len(),
        decode_s: report.decode_time,
        drift,
    }
}

/// Phase 2: real traced engine run, returning the phase summary and the
/// Perfetto JSON document.
pub fn engine_trace(tokens: u64) -> (EngineTracePhase, String) {
    let cfg = models::tiny_test();
    let tracer = Tracer::new();
    let e = Engine::new(
        &cfg,
        42,
        EngineOptions {
            tracer: tracer.clone(),
            ..EngineOptions::default()
        },
    )
    .expect("engine construction");
    let prompts = vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6]];
    let g = e
        .run(&GenerateRequest::new(prompts, tokens as usize).with_batches(2))
        .expect("traced generation");
    let report = tracer.snapshot();
    let totals = report.observed_task_totals();
    let mut perfetto = PerfettoTrace::new("lm-offload-engine");
    perfetto.add_report(&report);
    (
        EngineTracePhase {
            tokens_generated: g.tokens.iter().map(|r| r.len() as u64).sum(),
            spans: report.spans.len(),
            scopes: report.scopes.len(),
            load_weight_s: totals[TaskKind::LoadWeight.index()],
            compute_s: totals[TaskKind::ComputeCpu.index()] + totals[TaskKind::ComputeGpu.index()],
            perfetto_events: perfetto.event_count(),
            metrics: report.metrics,
        },
        perfetto.to_json_string(),
    )
}

/// Run both phases. Returns the result plus the engine's Perfetto JSON
/// (written to `results/trace.json` by the `repro` binary).
pub fn run(tokens: u64) -> (TraceResult, String) {
    let sim = sim_drift(tokens);
    let (engine, perfetto_json) = engine_trace(tokens);
    (
        TraceResult {
            tokens,
            sim,
            engine,
        },
        perfetto_json,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_drift_is_unity_across_all_six_tasks() {
        let phase = sim_drift(4);
        assert_eq!(phase.drift.tasks.len(), 6);
        for t in &phase.drift.tasks {
            assert!(t.predicted_s > 0.0, "{} predicted nothing", t.task);
            let r = t.ratio.expect("ratio defined");
            assert!(
                (r - 1.0).abs() < 1e-6,
                "{}: ratio {r} (predicted {} observed {})",
                t.task,
                t.predicted_s,
                t.observed_s
            );
        }
        assert!(phase.drift.ok_within(1e-6));
        assert!(phase.spans > 0);
    }

    #[test]
    fn engine_phase_produces_loadable_perfetto_json() {
        let (phase, json) = engine_trace(3);
        assert_eq!(phase.tokens_generated, 6); // 2 rows x 3 tokens
        assert!(phase.spans > 0);
        assert!(phase.load_weight_s > 0.0);
        assert!(phase.compute_s > 0.0);
        let doc: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), phase.perfetto_events);
        assert!(events
            .iter()
            .any(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("load_weight")));
    }
}
