//! Robustness of the checkpoint reader: arbitrary and truncated inputs
//! must produce errors, never panics or huge allocations — the property
//! that makes a disk tier safe to point at untrusted paths.

#![allow(clippy::unwrap_used)]
use lm_engine::{write_checkpoint, Checkpoint, CheckpointError};
use lm_fault::{FaultConfig, FaultInjector, RetryPolicy};
use lm_models::presets;
use proptest::prelude::*;
use std::time::Duration;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lmoffload-fuzz-{tag}-{}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bytes never panic the reader.
    #[test]
    fn random_bytes_are_rejected_gracefully(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let path = tmp("rand");
        std::fs::write(&path, &data).unwrap();
        let result = std::panic::catch_unwind(|| Checkpoint::open(&path).map(|_| ()));
        std::fs::remove_file(&path).ok();
        prop_assert!(matches!(result, Ok(Err(_)) | Ok(Ok(()))), "reader panicked");
    }

    /// Truncating a valid checkpoint anywhere yields an error on open or
    /// on the first layer read — never a panic, never silent corruption
    /// being accepted as a full model.
    #[test]
    fn truncations_fail_cleanly(cut_pct in 1u32..99) {
        let cfg = presets::tiny_test();
        let path = tmp("trunc");
        write_checkpoint(&cfg, 5, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as u64 * cut_pct as u64 / 100) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let outcome = std::panic::catch_unwind(|| -> Result<(), lm_engine::CheckpointError> {
            match Checkpoint::open(&path) {
                Err(_) => Ok(()),
                Ok(mut ck) => {
                    // Header may have survived; every layer must then be
                    // readable or error out.
                    for i in 0..ck.num_layers() {
                        ck.load_layer(i)?;
                    }
                    Ok(())
                }
            }
        });
        std::fs::remove_file(&path).ok();
        match outcome {
            Ok(Ok(())) => {
                // Fully readable truncation can only happen if the cut was
                // beyond all layer data (trailing bytes) — the offset table
                // lives in the header, so this means nothing was lost.
                prop_assert!(cut_pct > 90, "cut at {cut_pct}% read back fully");
            }
            Ok(Err(_)) => {} // clean error: the desired outcome
            Err(_) => prop_assert!(false, "reader panicked at {cut_pct}%"),
        }
    }
}

/// A fast retry policy so the flaky-reader tests don't sleep for real.
fn quick_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_micros(50),
        multiplier: 2.0,
        max_backoff: Duration::from_millis(1),
        deadline: Duration::from_secs(5),
        ..RetryPolicy::default()
    }
}

#[test]
fn flaky_reader_recovers_within_the_retry_budget() {
    // A reader that fails a few times and then succeeds: injected I/O
    // errors and torn reads on most first attempts, with a retry budget
    // deep enough to get through. Fault decisions are deterministic per
    // seed, so scan a few seeds until one exercises an actual retry
    // (virtually the first one will).
    let cfg = presets::tiny_test();
    let path = tmp("flaky");
    write_checkpoint(&cfg, 5, &path).unwrap();
    let mut exercised = false;
    for seed in 0..32 {
        let fault = FaultInjector::new(FaultConfig {
            disk_error_rate: 0.5,
            torn_read_rate: 0.2,
            ..FaultConfig::quiescent(seed)
        });
        let mut flaky = Checkpoint::open(&path).unwrap();
        let mut clean = Checkpoint::open(&path).unwrap();
        for i in 0..flaky.num_layers() {
            let recovered = flaky
                .load_layer_with_retry(i, &fault, &quick_retry(12))
                .expect("retry budget must absorb a 50% flaky reader");
            // Never a partial layer: a recovered read is identical to a
            // clean one.
            let reference = clean.load_layer(i).unwrap();
            assert_eq!(recovered.ln1_gamma, reference.ln1_gamma);
            assert_eq!(recovered.ln2_beta, reference.ln2_beta);
            assert_eq!(recovered.mlp.len(), reference.mlp.len());
        }
        let s = fault.stats();
        if s.retries > 0 {
            assert!(s.retry_successes > 0, "recovered loads must be counted");
            exercised = true;
            break;
        }
    }
    std::fs::remove_file(&path).ok();
    assert!(exercised, "no seed in 0..32 exercised a retry");
}

#[test]
fn hard_failure_exhausts_attempts_into_a_clean_error() {
    // Rate 1.0: every attempt fails. The budget runs out and the caller
    // gets the last I/O error — no panic, no partial layer.
    let cfg = presets::tiny_test();
    let path = tmp("hard");
    write_checkpoint(&cfg, 5, &path).unwrap();
    let fault = FaultInjector::new(FaultConfig {
        disk_error_rate: 1.0,
        ..FaultConfig::quiescent(3)
    });
    let mut ck = Checkpoint::open(&path).unwrap();
    let err = ck
        .load_layer_with_retry(0, &fault, &quick_retry(4))
        .expect_err("a 100% failing reader cannot succeed");
    assert!(matches!(err, CheckpointError::Io(_)), "{err:?}");
    // Three retries after the first attempt, none successful.
    assert_eq!(fault.stats().retries, 3);
    assert_eq!(fault.stats().retry_successes, 0);
    // The checkpoint object stays usable once the fault plan allows it.
    assert!(ck.load_layer(0).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn deadline_exceeded_is_a_timeout_error_not_a_panic() {
    let cfg = presets::tiny_test();
    let path = tmp("deadline");
    write_checkpoint(&cfg, 5, &path).unwrap();
    let fault = FaultInjector::new(FaultConfig {
        disk_error_rate: 1.0,
        ..FaultConfig::quiescent(3)
    });
    // Huge attempt budget but a deadline the backoff blows through.
    let retry = RetryPolicy {
        max_attempts: 1_000_000,
        base_backoff: Duration::from_millis(2),
        multiplier: 2.0,
        max_backoff: Duration::from_millis(4),
        deadline: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut ck = Checkpoint::open(&path).unwrap();
    let err = ck
        .load_layer_with_retry(0, &fault, &retry)
        .expect_err("deadline must cut the retry loop");
    match err {
        CheckpointError::Io(io) => assert_eq!(io.kind(), std::io::ErrorKind::TimedOut),
        other => panic!("expected a timeout I/O error, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn header_field_corruption_is_detected() {
    let cfg = presets::tiny_test();
    let path = tmp("hdr");
    write_checkpoint(&cfg, 5, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Corrupt the family tag (offset 8..12) to an unknown value.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(Checkpoint::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}
