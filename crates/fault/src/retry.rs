//! Bounded retry with exponential backoff, a hard deadline, and
//! *seeded* backoff jitter.
//!
//! # Determinism contract
//!
//! Backoff jitter is a **pure function of `(jitter_seed, attempt)`** —
//! a stateless SplitMix64 hash, the same construction the
//! [`FaultInjector`](crate::FaultInjector) uses for fault decisions —
//! not a draw from a shared mutable RNG. Consequences:
//!
//! - the same policy (same `jitter_seed`) produces the identical backoff
//!   schedule on every run, every thread, every machine — fault-storm
//!   replays are bit-reproducible;
//! - concurrent retry loops sharing one policy cannot perturb each
//!   other's sleeps (there is no RNG state to race on);
//! - jitter only stretches or shrinks *wall-clock* sleeps; virtual-clock
//!   outcomes (the serving scheduler, the simulator) are unaffected by
//!   construction.
//!
//! Callers wiring jitter into a fault experiment should derive
//! `jitter_seed` from the injector seed (e.g.
//! `policy.with_seeded_jitter(fault_seed, 0.5)`) so one seed pins the
//! entire run: which faults fire *and* how recovery paces itself.

use crate::{mix, unit};
use std::time::{Duration, Instant};

/// Outcome of a retried operation that never succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError<E> {
    /// Every allowed attempt failed; carries the last error.
    AttemptsExhausted { attempts: u32, last: E },
    /// The deadline elapsed before the next attempt could start;
    /// carries the most recent error.
    DeadlineExceeded { elapsed: Duration, last: E },
}

impl<E: std::fmt::Display> std::fmt::Display for RetryError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::AttemptsExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::DeadlineExceeded { elapsed, last } => {
                write!(f, "deadline exceeded after {elapsed:?}: {last}")
            }
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for RetryError<E> {}

impl<E> RetryError<E> {
    pub fn into_last(self) -> E {
        match self {
            RetryError::AttemptsExhausted { last, .. } => last,
            RetryError::DeadlineExceeded { last, .. } => last,
        }
    }
}

/// Retry policy: at most `max_attempts` tries, sleeping
/// `base_backoff * multiplier^(attempt-1)` (capped at `max_backoff`)
/// between them, never starting an attempt after `deadline` has
/// elapsed since the first. With `jitter_frac > 0` each sleep is
/// stretched by a deterministic, seeded factor in
/// `[1 - jitter_frac/2, 1 + jitter_frac/2)` — see the module docs for
/// the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_backoff: Duration,
    pub multiplier: f64,
    pub max_backoff: Duration,
    pub deadline: Duration,
    /// Jitter width as a fraction of the nominal backoff, in [0, 1].
    /// `0` (the default) disables jitter entirely.
    pub jitter_frac: f64,
    /// Seed of the jitter hash; derive from the fault injector seed so
    /// one seed pins the whole replay.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(5),
            jitter_frac: 0.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            multiplier: 1.0,
            max_backoff: Duration::ZERO,
            deadline: Duration::MAX,
            ..RetryPolicy::default()
        }
    }

    /// Tight policy for unit tests: fast backoff, short deadline.
    pub fn fast_test() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_micros(100),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(1),
            deadline: Duration::from_secs(2),
            ..RetryPolicy::default()
        }
    }

    /// This policy with seeded backoff jitter: each sleep is scaled by a
    /// deterministic factor in `[1 - frac/2, 1 + frac/2)` hashed from
    /// `(seed, attempt)`. Pass the fault injector's seed so the whole
    /// storm — faults and recovery pacing alike — replays from one
    /// number.
    pub fn with_seeded_jitter(mut self, seed: u64, frac: f64) -> Self {
        self.jitter_seed = seed;
        self.jitter_frac = frac.clamp(0.0, 1.0);
        self
    }

    /// Backoff before retry number `attempt` (1-based: the sleep taken
    /// after the `attempt`-th failure). Jitter, when enabled, is a pure
    /// function of `(jitter_seed, attempt)` — identical across runs.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let mut nanos = self.base_backoff.as_nanos() as f64 * factor;
        if self.jitter_frac > 0.0 {
            let u = unit(mix(self.jitter_seed ^ mix(attempt as u64)));
            nanos *= 1.0 + self.jitter_frac * (u - 0.5);
        }
        Duration::from_nanos(nanos as u64).min(self.max_backoff)
    }

    /// Run `op(attempt)` until it succeeds, attempts run out, or the
    /// deadline passes. `on_retry` is invoked before each sleep (for
    /// counters/logging).
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut on_retry: impl FnMut(u32, &E),
    ) -> Result<T, RetryError<E>> {
        assert!(self.max_attempts >= 1, "policy must allow one attempt");
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let next = attempt + 1;
                    if next >= self.max_attempts {
                        return Err(RetryError::AttemptsExhausted {
                            attempts: next,
                            last: e,
                        });
                    }
                    let pause = self.backoff(next);
                    if start.elapsed() + pause > self.deadline {
                        return Err(RetryError::DeadlineExceeded {
                            elapsed: start.elapsed(),
                            last: e,
                        });
                    }
                    on_retry(next, &e);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_retries() {
        let p = RetryPolicy::fast_test();
        let mut retries = 0;
        let r: Result<u32, RetryError<&str>> =
            p.run(|_| Ok(7), |_, _| retries += 1);
        assert_eq!(r.unwrap(), 7);
        assert_eq!(retries, 0);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let p = RetryPolicy::fast_test();
        let mut retries = 0;
        let r: Result<u32, RetryError<String>> = p.run(
            |attempt| {
                if attempt < 3 {
                    Err(format!("transient {attempt}"))
                } else {
                    Ok(attempt)
                }
            },
            |_, _| retries += 1,
        );
        assert_eq!(r.unwrap(), 3);
        assert_eq!(retries, 3);
    }

    #[test]
    fn exhausts_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::fast_test()
        };
        let r: Result<(), RetryError<&str>> = p.run(|_| Err("always"), |_, _| {});
        match r {
            Err(RetryError::AttemptsExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(last, "always");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let p = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(20),
            multiplier: 1.0,
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_millis(30),
            ..RetryPolicy::default()
        };
        let r: Result<(), RetryError<&str>> = p.run(|_| Err("slow"), |_, _| {});
        assert!(matches!(r, Err(RetryError::DeadlineExceeded { .. })));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(10)); // capped
        assert_eq!(p.backoff(9), Duration::from_millis(10));
    }

    #[test]
    fn seeded_jitter_is_bit_reproducible() {
        let a = RetryPolicy::default().with_seeded_jitter(42, 0.5);
        let b = RetryPolicy::default().with_seeded_jitter(42, 0.5);
        for attempt in 1..20 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt), "attempt {attempt}");
        }
        // Different seeds pace differently (at least one attempt must).
        let c = RetryPolicy::default().with_seeded_jitter(43, 0.5);
        assert!(
            (1..20).any(|n| a.backoff(n) != c.backoff(n)),
            "seed must matter"
        );
    }

    #[test]
    fn jitter_stays_within_its_band_and_the_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(4),
            multiplier: 1.0,
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(1),
            ..RetryPolicy::default()
        }
        .with_seeded_jitter(7, 0.5);
        for attempt in 1..50 {
            let b = p.backoff(attempt).as_secs_f64();
            assert!((0.003..0.005).contains(&b), "attempt {attempt}: {b}s");
        }
        // The cap still binds after jitter.
        let capped = RetryPolicy {
            max_backoff: Duration::from_millis(4),
            ..p
        };
        for attempt in 1..50 {
            assert!(capped.backoff(attempt) <= Duration::from_millis(4));
        }
    }

    #[test]
    fn zero_jitter_is_the_exact_nominal_schedule() {
        let plain = RetryPolicy::fast_test();
        let zeroed = RetryPolicy::fast_test().with_seeded_jitter(99, 0.0);
        for attempt in 1..10 {
            assert_eq!(plain.backoff(attempt), zeroed.backoff(attempt));
        }
    }
}
