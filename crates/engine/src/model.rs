//! A real decoder-only transformer built on `lm-tensor`, with per-layer
//! weight bundles the offloading store can move between pools.

use lm_models::{Family, ModelConfig};
use lm_tensor::ops::elementwise::{
    add_assign, gelu, layernorm_rows, mul_assign, rmsnorm_rows, silu,
};
use lm_tensor::ops::rope::{apply_rope_decode, apply_rope_prefill};
use lm_tensor::{mha_decode, mha_prefill, KvCache, Linear, QuantConfig, Tensor};

/// All weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    pub ln1_gamma: Vec<f32>,
    pub ln1_beta: Vec<f32>,
    pub q: Linear,
    pub k: Linear,
    pub v: Linear,
    pub o: Linear,
    pub ln2_gamma: Vec<f32>,
    pub ln2_beta: Vec<f32>,
    /// MLP up / gate / down. OPT: [fc1, fc2]; LLaMA: [gate, up, down].
    pub mlp: Vec<Linear>,
    pub family: Family,
}

impl LayerWeights {
    /// Deterministic synthetic weights for layer `idx`.
    pub fn synthesize(cfg: &ModelConfig, idx: u32, seed: u64) -> Self {
        let h = cfg.hidden as usize;
        let f = cfg.ffn_hidden as usize;
        let s = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(idx as u64);
        let lin = |i: usize, fan_in: usize, fan_out: usize| {
            Linear::new(fan_in, fan_out, cfg.family == Family::Opt, s.wrapping_add(i as u64))
        };
        let mlp = match cfg.family {
            Family::Llama => vec![lin(4, h, f), lin(5, h, f), lin(6, f, h)],
            _ => vec![lin(4, h, f), lin(5, f, h)],
        };
        LayerWeights {
            ln1_gamma: vec![1.0; h],
            ln1_beta: vec![0.0; h],
            q: lin(0, h, h),
            k: lin(1, h, h),
            v: lin(2, h, h),
            o: lin(3, h, h),
            ln2_gamma: vec![1.0; h],
            ln2_beta: vec![0.0; h],
            mlp,
            family: cfg.family,
        }
    }

    /// Bytes this layer occupies at rest.
    pub fn bytes(&self) -> usize {
        let lin = |l: &Linear| l.weight.bytes() + l.bias.as_ref().map_or(0, |b| b.len() * 4);
        let norm = (self.ln1_gamma.len() + self.ln1_beta.len()) * 4 * 2;
        lin(&self.q)
            + lin(&self.k)
            + lin(&self.v)
            + lin(&self.o)
            + self.mlp.iter().map(lin).sum::<usize>()
            + norm
    }

    /// Quantize every projection in place (at-rest compression).
    pub fn quantize(&mut self, config: QuantConfig) {
        self.q.quantize_weights(config);
        self.k.quantize_weights(config);
        self.v.quantize_weights(config);
        self.o.quantize_weights(config);
        for m in &mut self.mlp {
            m.quantize_weights(config);
        }
    }

    /// Convert every projection to half precision in place (the fp16
    /// baseline format).
    pub fn halve(&mut self) {
        self.q.halve_weights();
        self.k.halve_weights();
        self.v.halve_weights();
        self.o.halve_weights();
        for m in &mut self.mlp {
            m.halve_weights();
        }
    }

    fn norm1(&self, x: &mut Tensor) {
        match self.family {
            Family::Llama => rmsnorm_rows(x, &self.ln1_gamma, 1e-6),
            _ => layernorm_rows(x, &self.ln1_gamma, &self.ln1_beta, 1e-5),
        }
    }

    fn norm2(&self, x: &mut Tensor) {
        match self.family {
            Family::Llama => rmsnorm_rows(x, &self.ln2_gamma, 1e-6),
            _ => layernorm_rows(x, &self.ln2_gamma, &self.ln2_beta, 1e-5),
        }
    }

    fn mlp_forward(&self, x: &Tensor) -> Tensor {
        match self.family {
            Family::Llama => {
                let mut gate = self.mlp[0].forward(x);
                silu(&mut gate);
                let up = self.mlp[1].forward(x);
                mul_assign(&mut gate, &up);
                self.mlp[2].forward(&gate)
            }
            _ => {
                let mut hidden = self.mlp[0].forward(x);
                gelu(&mut hidden);
                self.mlp[1].forward(&hidden)
            }
        }
    }

    /// Decode step: `x` is `[batch, hidden]` at absolute position `pos`;
    /// appends this token's K/V to `cache` and returns the layer output.
    /// LLaMA-family layers rotate Q/K with RoPE; cached keys are stored
    /// rotated.
    pub fn forward_decode(
        &self,
        x: &Tensor,
        cache: &mut KvCache,
        num_heads: usize,
        pos: usize,
    ) -> Tensor {
        let mut normed = x.clone();
        self.norm1(&mut normed);
        let mut q = self.q.forward(&normed);
        let mut k = self.k.forward(&normed);
        let v = self.v.forward(&normed);
        if self.family == Family::Llama {
            apply_rope_decode(&mut q, num_heads, pos);
            apply_rope_decode(&mut k, num_heads, pos);
        }
        cache.append(&k, &v);
        let attn = mha_decode(&q, cache, num_heads);
        let mut x1 = self.o.forward(&attn);
        add_assign(&mut x1, x);

        let mut normed2 = x1.clone();
        self.norm2(&mut normed2);
        let mut out = self.mlp_forward(&normed2);
        add_assign(&mut out, &x1);
        out
    }

    /// Prefill step: `x` is `[batch, s, hidden]` (flattened internally)
    /// starting at absolute position `start_pos`; populates `cache` with
    /// all `s` positions.
    pub fn forward_prefill(
        &self,
        x: &Tensor,
        cache: &mut KvCache,
        num_heads: usize,
        start_pos: usize,
    ) -> Tensor {
        let (b, s, h) = (x.dim(0), x.dim(1), x.dim(2));
        let flat = x.clone().reshape([b * s, h]);
        let mut normed = flat.clone();
        self.norm1(&mut normed);
        let mut q = self.q.forward(&normed).reshape([b, s, h]);
        let mut k = self.k.forward(&normed).reshape([b, s, h]);
        let v = self.v.forward(&normed).reshape([b, s, h]);
        if self.family == Family::Llama {
            apply_rope_prefill(&mut q, num_heads, start_pos);
            apply_rope_prefill(&mut k, num_heads, start_pos);
        }
        cache.append(&k, &v);
        let attn = mha_prefill(&q, &k, &v, num_heads).reshape([b * s, h]);
        let mut x1 = self.o.forward(&attn);
        add_assign(&mut x1, &flat);

        let mut normed2 = x1.clone();
        self.norm2(&mut normed2);
        let mut out = self.mlp_forward(&normed2);
        add_assign(&mut out, &x1);
        out.reshape([b, s, h])
    }
}

/// Token embedding / unembedding (tied), with a learned positional table
/// for the OPT family (LLaMA encodes positions with RoPE in the layers
/// instead).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// `[vocab, hidden]`.
    pub table: Tensor,
    /// `[max_seq, hidden]` learned positional embeddings (OPT/Custom).
    pub pos_table: Option<Tensor>,
}

impl Embedding {
    pub fn synthesize(cfg: &ModelConfig, seed: u64) -> Self {
        let pos_table = match cfg.family {
            Family::Llama => None,
            Family::Opt | Family::Custom => Some(Tensor::randn(
                [cfg.max_seq_len as usize, cfg.hidden as usize],
                0.02,
                seed ^ 0x9051_7105,
            )),
        };
        Embedding {
            table: Tensor::randn(
                [cfg.vocab_size as usize, cfg.hidden as usize],
                0.02,
                seed,
            ),
            pos_table,
        }
    }

    /// Look up token ids at absolute positions → `[batch, hidden]`.
    pub fn embed(&self, tokens: &[u32], positions: &[usize]) -> Tensor {
        assert_eq!(tokens.len(), positions.len(), "one position per token");
        let h = self.table.dim(1);
        let mut data = Vec::with_capacity(tokens.len() * h);
        for (&t, &p) in tokens.iter().zip(positions) {
            data.extend_from_slice(self.table.row(t as usize));
            if let Some(pt) = &self.pos_table {
                let start = data.len() - h;
                for (x, e) in data[start..].iter_mut().zip(pt.row(p)) {
                    *x += e;
                }
            }
        }
        Tensor::from_vec([tokens.len(), h], data)
    }

    /// Logits for hidden states `[batch, hidden]` → `[batch, vocab]`.
    pub fn unembed(&self, x: &Tensor) -> Tensor {
        lm_tensor::ops::matmul::matmul_transb(x, &self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    #[test]
    fn layer_bytes_match_param_count() {
        let cfg = presets::tiny_test();
        let l = LayerWeights::synthesize(&cfg, 0, 7);
        // 4·h² + 2·h·f weights at f32 plus biases and norms.
        let params = cfg.weights_per_layer() as usize;
        let bytes = l.bytes();
        assert!(bytes >= params * 4, "{bytes} < {}", params * 4);
        assert!(bytes < params * 4 + 64 * 1024);
    }

    #[test]
    fn decode_shapes_and_determinism() {
        let cfg = presets::tiny_test();
        let l = LayerWeights::synthesize(&cfg, 0, 7);
        let x = Tensor::randn([3, 64], 1.0, 1);
        let mut c1 = KvCache::new(3, 64, 8);
        let mut c2 = KvCache::new(3, 64, 8);
        let y1 = l.forward_decode(&x, &mut c1, 4, 0);
        let y2 = l.forward_decode(&x, &mut c2, 4, 0);
        assert_eq!(y1.shape().0, vec![3, 64]);
        assert!(y1.allclose(&y2, 0.0), "layer must be deterministic");
        assert_eq!(c1.len(), 1);
    }

    #[test]
    fn prefill_then_decode_consistent_with_pure_prefill() {
        // Prefill s tokens, then the decode of token s must equal the
        // (s+1)-token prefill's last position.
        let cfg = presets::tiny_test();
        let l = LayerWeights::synthesize(&cfg, 0, 3);
        let (b, s, h) = (2usize, 5usize, 64usize);
        let x_full = Tensor::randn([b, s + 1, h], 1.0, 9);

        // Path A: prefill all s+1.
        let mut ca = KvCache::new(b, h, 16);
        let ya = l.forward_prefill(&x_full, &mut ca, 4, 0);

        // Path B: prefill s, decode 1.
        let mut xb = Vec::new();
        let mut x_last = Vec::new();
        for bi in 0..b {
            for t in 0..s {
                xb.extend_from_slice(&x_full.data()[(bi * (s + 1) + t) * h..][..h]);
            }
            x_last.extend_from_slice(&x_full.data()[(bi * (s + 1) + s) * h..][..h]);
        }
        let mut cb = KvCache::new(b, h, 16);
        let _ = l.forward_prefill(&Tensor::from_vec([b, s, h], xb), &mut cb, 4, 0);
        let yb = l.forward_decode(&Tensor::from_vec([b, h], x_last), &mut cb, 4, s);

        for bi in 0..b {
            let a_last = &ya.data()[(bi * (s + 1) + s) * h..][..h];
            for (av, bv) in a_last.iter().zip(yb.row(bi)) {
                assert!((av - bv).abs() < 1e-4, "{av} vs {bv}");
            }
        }
    }

    #[test]
    fn quantized_layer_stays_close() {
        let cfg = presets::tiny_test();
        let mut l = LayerWeights::synthesize(&cfg, 1, 11);
        let x = Tensor::randn([2, 64], 1.0, 2);
        let mut c1 = KvCache::new(2, 64, 4);
        let full = l.forward_decode(&x, &mut c1, 4, 0);
        l.quantize(QuantConfig::int8());
        let mut c2 = KvCache::new(2, 64, 4);
        let quant = l.forward_decode(&x, &mut c2, 4, 0);
        let scale = full.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(quant.max_abs_diff(&full) < 0.15 * scale.max(1.0));
    }

    #[test]
    fn opt_embedding_depends_on_position_llama_does_not() {
        let mut cfg = presets::tiny_test(); // Custom family: learned table
        let e = Embedding::synthesize(&cfg, 5);
        let a = e.embed(&[7], &[0]);
        let b = e.embed(&[7], &[3]);
        assert!(a.max_abs_diff(&b) > 1e-4, "learned positions must differ");
        cfg.family = Family::Llama;
        let e = Embedding::synthesize(&cfg, 5);
        let a = e.embed(&[7], &[0]);
        let b = e.embed(&[7], &[3]);
        assert!(a.allclose(&b, 0.0), "LLaMA embeds without positions");
    }

    #[test]
    fn llama_layer_uses_rope_relative_positions() {
        // RoPE encodes *relative* position: the first token's output is
        // position-invariant (relative distance 0 to itself), but a
        // second token attending to it changes with the distance.
        let mut cfg = presets::tiny_test();
        cfg.family = Family::Llama;
        cfg.ffn_hidden = 256;
        let l = LayerWeights::synthesize(&cfg, 0, 7);
        let a = Tensor::randn([1, 64], 1.0, 1);
        let b = Tensor::randn([1, 64], 1.0, 2);

        let mut c0 = KvCache::new(1, 64, 4);
        let y_self_0 = l.forward_decode(&a, &mut c0, 4, 0);
        let mut c9 = KvCache::new(1, 64, 4);
        let y_self_9 = l.forward_decode(&a, &mut c9, 4, 9);
        assert!(
            y_self_0.allclose(&y_self_9, 1e-4),
            "first token must be position-invariant under RoPE"
        );

        // Distance 1 vs distance 5 to the same cached token.
        let y_near = l.forward_decode(&b, &mut c0, 4, 1);
        let mut c0b = KvCache::new(1, 64, 4);
        let _ = l.forward_decode(&a, &mut c0b, 4, 0);
        let y_far = l.forward_decode(&b, &mut c0b, 4, 5);
        assert!(
            y_near.max_abs_diff(&y_far) > 1e-5,
            "relative distance must matter"
        );
    }

    #[test]
    fn embedding_round_trip_prefers_own_token() {
        let cfg = presets::tiny_test();
        let e = Embedding::synthesize(&cfg, 5);
        let x = e.embed(&[7, 42], &[0, 1]);
        let logits = e.unembed(&x);
        // The logit of the embedded token should be the row's maximum
        // (random vectors are near-orthogonal).
        for (row, tok) in [(0usize, 7usize), (1, 42)] {
            let r = logits.row(row);
            let argmax = r
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax, tok);
        }
    }
}
