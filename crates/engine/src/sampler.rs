//! Token samplers for the decode loop.

use lm_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Always take the argmax — deterministic, used by the offloading
    /// equivalence tests.
    Greedy,
    /// Sample among the `k` highest logits with softmax weights, seeded.
    TopK { k: usize, seed: u64 },
    /// Nucleus sampling: the smallest set of tokens whose softmax mass
    /// reaches `p`, seeded.
    TopP { p: f32, seed: u64 },
}

impl Sampler {
    /// Sample one token per row of a `[batch, vocab]` logits tensor.
    pub fn sample(&self, logits: &Tensor) -> Vec<u32> {
        assert_eq!(logits.rank(), 2, "logits must be [batch, vocab]");
        match *self {
            Sampler::Greedy => (0..logits.dim(0)).map(|r| argmax(logits.row(r))).collect(),
            Sampler::TopK { k, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                (0..logits.dim(0))
                    .map(|r| top_k(logits.row(r), k, &mut rng))
                    .collect()
            }
            Sampler::TopP { p, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                (0..logits.dim(0))
                    .map(|r| top_p(logits.row(r), p, &mut rng))
                    .collect()
            }
        }
    }
}

fn argmax(row: &[f32]) -> u32 {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i as u32)
        .expect("non-empty vocab")
}

fn top_k(row: &[f32], k: usize, rng: &mut SmallRng) -> u32 {
    assert!(k >= 1, "k must be positive");
    let mut idx: Vec<usize> = (0..row.len()).collect();
    let k = k.min(row.len());
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = &idx[..k];
    // Softmax over the top-k logits.
    let max = top.iter().map(|&i| row[i]).fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f32> = top.iter().map(|&i| (row[i] - max).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen::<f32>() * total;
    for (w, &i) in weights.iter().zip(top) {
        draw -= w;
        if draw <= 0.0 {
            return i as u32;
        }
    }
    top[k - 1] as u32
}

fn top_p(row: &[f32], p: f32, rng: &mut SmallRng) -> u32 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    // Softmax over the full row, then take tokens by descending mass
    // until the nucleus covers p.
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut probs: Vec<(usize, f32)> = row
        .iter()
        .enumerate()
        .map(|(i, &x)| (i, (x - max).exp()))
        .collect();
    let total: f32 = probs.iter().map(|(_, w)| w).sum();
    probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut mass = 0.0;
    let mut nucleus = 0;
    for (_, w) in &probs {
        mass += w / total;
        nucleus += 1;
        if mass >= p {
            break;
        }
    }
    let nucleus_total: f32 = probs[..nucleus].iter().map(|(_, w)| w).sum();
    let mut draw = rng.gen::<f32>() * nucleus_total;
    for (i, w) in &probs[..nucleus] {
        draw -= w;
        if draw <= 0.0 {
            return *i as u32;
        }
    }
    probs[nucleus - 1].0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_takes_argmax_per_row() {
        let logits = Tensor::from_vec([2, 4], vec![0.1, 3.0, -1.0, 0.0, 9.0, 0.0, 0.0, 0.0]);
        assert_eq!(Sampler::Greedy.sample(&logits), vec![1, 0]);
    }

    #[test]
    fn top1_equals_greedy() {
        let logits = Tensor::randn([3, 50], 2.0, 42);
        let greedy = Sampler::Greedy.sample(&logits);
        let top1 = Sampler::TopK { k: 1, seed: 7 }.sample(&logits);
        assert_eq!(greedy, top1);
    }

    #[test]
    fn top_k_stays_within_top_set() {
        let mut logits = vec![0.0f32; 100];
        logits[10] = 5.0;
        logits[20] = 4.5;
        logits[30] = 4.0;
        let t = Tensor::from_vec([1, 100], logits);
        for seed in 0..20 {
            let tok = Sampler::TopK { k: 3, seed }.sample(&t)[0];
            assert!([10, 20, 30].contains(&tok), "got {tok}");
        }
    }

    #[test]
    fn top_p_zero_equals_greedy() {
        // p = 0 admits only the single most likely token.
        let logits = Tensor::randn([3, 50], 2.0, 11);
        let greedy = Sampler::Greedy.sample(&logits);
        let nucleus = Sampler::TopP { p: 0.0, seed: 3 }.sample(&logits);
        assert_eq!(greedy, nucleus);
    }

    #[test]
    fn top_p_stays_in_high_mass_set() {
        // One dominant token (mass > 0.9): a 0.5 nucleus must pick it.
        let mut logits = vec![0.0f32; 64];
        logits[17] = 10.0;
        let t = Tensor::from_vec([1, 64], logits);
        for seed in 0..10 {
            assert_eq!(Sampler::TopP { p: 0.5, seed }.sample(&t)[0], 17);
        }
    }

    #[test]
    fn top_p_is_seed_deterministic() {
        let logits = Tensor::randn([4, 64], 1.0, 5);
        let a = Sampler::TopP { p: 0.9, seed: 99 }.sample(&logits);
        let b = Sampler::TopP { p: 0.9, seed: 99 }.sample(&logits);
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_is_seed_deterministic() {
        let logits = Tensor::randn([4, 64], 1.0, 5);
        let a = Sampler::TopK { k: 8, seed: 99 }.sample(&logits);
        let b = Sampler::TopK { k: 8, seed: 99 }.sample(&logits);
        assert_eq!(a, b);
    }
}
