//! Figure 3 — throughput under the eight offloading × quantization
//! strategies of the §3.1 motivation study (OPT-30B, s=64, n=128,
//! bsz=64, bls=640), executed on FlexGen's runtime (its kernel quality,
//! default threading).
//!
//! For each strategy the placement percentages are chosen by the same
//! LP-equivalent grid search FlexGen uses, evaluated under the
//! ground-truth (quantization-aware) cost model, so each bar is the best
//! that strategy can do — matching how the paper's motivation study was
//! configured.

use lm_hardware::presets;
use lm_models::{presets as models, DType, Workload};
use lm_offload::{quant_aware_provider, QuantCostParams, ThreadFactors};
use lm_sim::{fits, simulate, AttentionPlacement, Policy};
use serde::{Deserialize, Serialize};

/// One strategy's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyResult {
    pub name: String,
    pub attention_offloaded: bool,
    pub quant_weights: bool,
    pub quant_kv: bool,
    /// Chosen percent of weights on GPU.
    pub wg: u32,
    /// Simulated throughput, tokens/s.
    pub tput: f64,
}

/// The eight strategies of Figure 3 (KV quantization is a no-op with CPU
/// attention, so that cluster has two meaningful bars plus duplicates the
/// paper also shows).
pub fn strategies() -> Vec<(String, AttentionPlacement, bool, bool)> {
    let mut out = Vec::new();
    for (att, aname) in [
        (AttentionPlacement::Cpu, "attn-offload"),
        (AttentionPlacement::Gpu, "no-attn-offload"),
    ] {
        for (qw, qk, qname) in [
            (false, false, "no-quant"),
            (true, false, "quant-W"),
            (false, true, "quant-KV"),
            (true, true, "quant-W+KV"),
        ] {
            out.push((format!("{aname}/{qname}"), att, qw, qk));
        }
    }
    out
}

/// The placement FlexGen's *quantization-blind* LP picks for a given
/// attention placement: maximise `wg` at fp16 under the memory
/// constraint. This mirrors the motivation study exactly — the policy is
/// chosen assuming fp16 costs, then quantization is applied on top,
/// which is precisely the suboptimality the paper's models fix.
fn flexgen_blind_wg(att: AttentionPlacement) -> Policy {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::motivation();
    let mut best = Policy {
        wg: 0.0,
        cg: 0.0,
        hg: 0.0,
        weights_dtype: DType::F16,
        kv_dtype: DType::F16,
        attention: att,
    };
    for step in 0..=20u32 {
        let p = Policy {
            wg: step as f64 / 20.0,
            ..best
        };
        if p.validate().is_ok() && fits(&model, &w, &platform, &p) {
            best = p; // higher wg always wins FlexGen's fp16 model
        }
    }
    best
}

/// Run the experiment.
pub fn run() -> Vec<StrategyResult> {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::motivation();
    let params = QuantCostParams::flexgen_kernels();

    strategies()
        .into_iter()
        .map(|(name, att, qw, qk)| {
            let mut policy = flexgen_blind_wg(att);
            policy.weights_dtype = if qw { DType::Int4 } else { DType::F16 };
            policy.kv_dtype = if qk { DType::Int4 } else { DType::F16 };
            let provider = quant_aware_provider(
                &platform,
                &model,
                &w,
                policy,
                params,
                ThreadFactors::Default,
            );
            let sim = simulate(&provider, &w, model.num_layers);
            StrategyResult {
                name,
                attention_offloaded: att == AttentionPlacement::Cpu,
                quant_weights: qw,
                quant_kv: qk,
                wg: (policy.wg * 100.0).round() as u32,
                tput: sim.throughput,
            }
        })
        .collect()
}

/// Figure 4 companion — per-token time breakdown into quantization,
/// dequantization and other for each Figure 3 strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownResult {
    pub name: String,
    /// Seconds/token spent quantizing (new KV).
    pub quant: f64,
    /// Seconds/token spent dequantizing (weights + old KV).
    pub dequant: f64,
    /// Seconds/token of everything else.
    pub other: f64,
}

/// Run the Figure 4 breakdown.
pub fn run_breakdown() -> Vec<BreakdownResult> {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::motivation();
    let params = QuantCostParams::flexgen_kernels();
    let quant_model = lm_offload::QuantModel::new(&platform, &model, &w, params);
    let l = model.num_layers as f64;
    let nb = w.num_batches as f64;
    let mid = w.gen_len / 2;

    run()
        .into_iter()
        .map(|s| {
            let wc = 1.0 - s.wg as f64 / 100.0;
            let dequant_w = if s.quant_weights {
                quant_model.dequan_wgt_per_layer(wc) * l
            } else {
                0.0
            };
            let (dequant_kv, quant_kv) = if s.quant_kv && !s.attention_offloaded {
                (
                    quant_model.dequan_old_cache_per_batch(mid) * nb * l,
                    quant_model.quan_new_cache_per_batch() * nb * l,
                )
            } else {
                (0.0, 0.0)
            };
            let step = w.block_size() as f64 / s.tput;
            let quant = quant_kv;
            let dequant = dequant_w + dequant_kv;
            BreakdownResult {
                name: s.name,
                quant,
                dequant,
                other: (step - quant - dequant).max(0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tput(rows: &[StrategyResult], name: &str) -> f64 {
        rows.iter().find(|r| r.name == name).unwrap().tput
    }

    #[test]
    fn reproduces_figure3_orderings() {
        let rows = run();
        // Observation 1a: with attention offloading, no quantization
        // strategy beats the plain configuration (quantizing the KV cache
        // is strictly worse — the CPU attention must decompress it; the
        // weight-only case is at best a tie, hidden behind the slow CPU
        // attention).
        let offload_plain = tput(&rows, "attn-offload/no-quant");
        for name in [
            "attn-offload/quant-W",
            "attn-offload/quant-KV",
            "attn-offload/quant-W+KV",
        ] {
            assert!(
                tput(&rows, name) <= offload_plain * 1.001,
                "{name} beats no-quant: {rows:?}"
            );
        }
        assert!(
            tput(&rows, "attn-offload/quant-KV") < offload_plain,
            "compressed cache must slow offloaded attention"
        );
        // Observation 1b + 2: without attention offloading, KV-only is
        // the best strategy; weights-only is the worst.
        let no_attn_best = tput(&rows, "no-attn-offload/quant-KV");
        assert!(no_attn_best > tput(&rows, "no-attn-offload/no-quant") * 1.3);
        assert!(
            tput(&rows, "no-attn-offload/quant-W") < tput(&rows, "no-attn-offload/no-quant")
        );
        assert!(tput(&rows, "no-attn-offload/quant-W+KV") < no_attn_best);
        // KV-quant without attention offloading is the global best bar
        // (the 82 tokens/s bar of Fig. 3).
        for r in &rows {
            assert!(no_attn_best >= r.tput, "{} beats quant-KV", r.name);
        }
    }

    #[test]
    fn breakdown_zero_quant_time_with_attention_offloading() {
        // Fig. 4: "With attention offloading, the (de)quantization
        // overhead is zero" — for the KV cache (weight dequant remains
        // when weights are quantized).
        let rows = run_breakdown();
        let none = rows
            .iter()
            .find(|r| r.name == "attn-offload/no-quant")
            .unwrap();
        assert_eq!(none.quant, 0.0);
        assert_eq!(none.dequant, 0.0);
        assert!(none.other > 0.0);
    }

    #[test]
    fn breakdown_quant_visible_without_offloading() {
        let rows = run_breakdown();
        let both = rows
            .iter()
            .find(|r| r.name == "no-attn-offload/quant-W+KV")
            .unwrap();
        assert!(both.dequant > 0.0);
        assert!(both.quant > 0.0);
        // (De)quantization is a visible share of the step (Fig. 4's bars).
        assert!(both.dequant + both.quant > 0.05 * both.other);
    }
}
