//! Unit helpers used throughout the workspace.
//!
//! The paper reports capacities in "GB" that are actually GiB (e.g. the
//! OPT-30B KV cache of 157 "GB" is 2·(s+n)·h₁·bls·l·2 bytes = 169.1e9 bytes
//! = 157.5 GiB). All byte quantities in this workspace are plain `u64` byte
//! counts; these helpers construct and display them.

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// One decimal gigabyte (10^9 bytes) — used for link bandwidths, which
/// vendors quote in decimal units.
pub const GB: u64 = 1_000_000_000;

/// Convert a byte count to fractional GiB (the unit the paper's tables use).
#[inline]
pub fn to_gib(bytes: u64) -> f64 {
    bytes as f64 / GIB as f64
}

/// Convert fractional GiB to bytes (rounding to the nearest byte).
#[inline]
pub fn gib(x: f64) -> u64 {
    (x * GIB as f64).round() as u64
}

/// Convert a decimal-GB/s figure to bytes per second.
#[inline]
pub fn gb_per_s(x: f64) -> f64 {
    x * GB as f64
}

/// Convert a TFLOPS figure to FLOP/s.
#[inline]
pub fn tflops(x: f64) -> f64 {
    x * 1e12
}

/// Convert a GHz figure to Hz.
#[inline]
pub fn ghz(x: f64) -> f64 {
    x * 1e9
}

/// Pretty-print a byte count with a binary suffix, matching the granularity
/// used in the paper's tables (one decimal place).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_round_trips() {
        assert_eq!(gib(1.0), GIB);
        assert_eq!(to_gib(GIB), 1.0);
        assert!((to_gib(gib(157.5)) - 157.5).abs() < 1e-9);
    }

    #[test]
    fn decimal_units() {
        assert_eq!(gb_per_s(32.0), 32e9);
        assert_eq!(tflops(312.0), 312e12);
        assert_eq!(ghz(1.41), 1.41e9);
    }

    #[test]
    fn formatting_picks_suffix() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KIB), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * MIB + MIB / 2), "3.5 MiB");
        assert_eq!(fmt_bytes(40 * GIB), "40.0 GiB");
    }
}
