//! Observability-configuration lints (`LMA27x`).
//!
//! A serving deployment that enforces an SLO or arms chaos faults is
//! only as good as the evidence it leaves behind (DESIGN.md §13). These
//! lints judge a sampled [`ObsProbe`] the way `serve_lints` judges a
//! plan:
//!
//! - `LMA270` (error): SLO enforcement enabled but no TTFT histogram is
//!   registered in the metrics registry — the objective is judged on
//!   predictions only, realized breaches can neither be observed nor
//!   post-mortemed;
//! - `LMA271` (warning): the flight recorder is armed with zero
//!   capacity while chaos faults are active — the dump a failure would
//!   freeze is guaranteed empty, which silently defeats its purpose.
//!
//! The probe is a plain value, so `lm-serve` can sample it from a live
//! config and mutation tests can corrupt fields directly without this
//! crate depending on the serving crate.

use crate::diag::{Diagnostic, LintCode, Report};
use serde::{Deserialize, Serialize};

/// Observations sampled from one serving deployment's observability
/// configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsProbe {
    /// Whether the SLO policy acts on predicted violations.
    pub slo_enforce: bool,
    /// Whether the metrics registry carries a TTFT histogram (the
    /// `serve.ttft_s` series the breach detector and the drift audit
    /// both read).
    pub ttft_histogram_registered: bool,
    /// Whether a flight recorder handle is armed at all.
    pub flight_enabled: bool,
    /// Ring capacity of the armed flight recorder (events).
    pub flight_capacity: u64,
    /// Whether the fault injector has any chaos fault rates configured.
    pub chaos_faults_armed: bool,
}

/// Run every observability lint over a sampled probe.
pub fn lint_obs(probe: &ObsProbe) -> Report {
    let mut out = Vec::new();

    // LMA270: enforcement promises reaction to breaches; without the
    // TTFT histogram there is no record of whether the promise held.
    if probe.slo_enforce && !probe.ttft_histogram_registered {
        out.push(Diagnostic::error(
            LintCode::Lma270SloWithoutTtftHistogram,
            "obs.ttft_histogram".to_string(),
            "SLO enforcement is enabled but no TTFT histogram is \
             registered: realized breaches would be invisible"
                .to_string(),
        ));
    }

    // LMA271: an armed, zero-capacity recorder accepts triggers but can
    // never carry evidence. Warning: the system still runs correctly.
    if probe.flight_enabled && probe.flight_capacity == 0 && probe.chaos_faults_armed {
        out.push(Diagnostic::warn(
            LintCode::Lma271FlightRecorderZeroCapacity,
            "obs.flight_capacity".to_string(),
            "flight recorder armed with zero capacity while chaos faults \
             are active: any post-mortem dump will be empty"
                .to_string(),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound() -> ObsProbe {
        ObsProbe {
            slo_enforce: true,
            ttft_histogram_registered: true,
            flight_enabled: true,
            flight_capacity: 256,
            chaos_faults_armed: true,
        }
    }

    #[test]
    fn sound_probe_is_clean() {
        let r = lint_obs(&sound());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn enforcement_without_ttft_histogram_caught() {
        let mut p = sound();
        p.ttft_histogram_registered = false;
        let r = lint_obs(&p);
        assert!(r.has(LintCode::Lma270SloWithoutTtftHistogram), "{r}");
        assert!(!r.is_clean());
        // Observe-only deployments may legitimately skip the histogram.
        p.slo_enforce = false;
        assert!(lint_obs(&p).is_clean());
    }

    #[test]
    fn zero_capacity_flight_recorder_warned_not_fatal() {
        let mut p = sound();
        p.flight_capacity = 0;
        let r = lint_obs(&p);
        assert!(r.has(LintCode::Lma271FlightRecorderZeroCapacity), "{r}");
        assert!(r.is_clean(), "capacity warning must not be fatal: {r}");
        // Quiescent faults: an empty ring records nothing anyway.
        p.chaos_faults_armed = false;
        assert!(!lint_obs(&p).has(LintCode::Lma271FlightRecorderZeroCapacity));
        // A disabled recorder is the documented null object, not a bug.
        p.chaos_faults_armed = true;
        p.flight_enabled = false;
        assert!(!lint_obs(&p).has(LintCode::Lma271FlightRecorderZeroCapacity));
    }

    #[test]
    fn probe_serializes() {
        let json = serde_json::to_string(&sound()).expect("serialize");
        assert!(json.contains("flight_capacity"), "{json}");
    }
}
