//! The FlexGen baseline (Sheng et al., ICML'23) as the paper uses it:
//! zig-zag block scheduling plus a policy search that — crucially for the
//! paper's argument — does *not* model quantization overheads or the
//! performance impact of asynchronous execution, and therefore searches
//! only the fp16 policy space.

use crate::search::{grid_search, SearchSpace};
use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_sim::{fits, BaseCostModel, Policy};
use serde::{Deserialize, Serialize};

/// Candidate GPU batch sizes FlexGen's search sweeps.
pub const BATCH_CANDIDATES: [u64; 8] = [4, 8, 16, 32, 64, 128, 192, 256];

/// Candidate zig-zag batch counts.
pub const NUM_BATCH_CANDIDATES: [u64; 5] = [1, 2, 4, 8, 10];

/// A framework's complete deployment decision: policy + block shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    pub policy: Policy,
    pub workload: Workload,
    /// The framework's own predicted throughput for this deployment
    /// (tokens/s) — its *belief*, not the simulated ground truth.
    pub predicted_throughput: f64,
}

/// FlexGen's internal evaluator: the base cost model with no quantization
/// terms and the default (untuned) thread-setting factors.
pub fn flexgen_evaluator(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
) -> Option<f64> {
    if !fits(model, workload, platform, policy) {
        return None;
    }
    let cost = BaseCostModel::new(platform, model, workload, *policy);
    Some(cost.throughput())
}

/// Run FlexGen's policy search for a model on a platform at a given
/// prompt/generation length: an exhaustive sweep over its fp16 policy
/// space and block shapes, maximising its (quantization-blind) predicted
/// throughput.
pub fn flexgen_search(
    platform: &Platform,
    model: &ModelConfig,
    prompt_len: u64,
    gen_len: u64,
) -> Option<Deployment> {
    let space = SearchSpace::flexgen();
    let mut best: Option<Deployment> = None;
    for &bsz in &BATCH_CANDIDATES {
        for &nb in &NUM_BATCH_CANDIDATES {
            let w = Workload::new(prompt_len, gen_len, bsz, nb);
            if let Some((policy, tput)) =
                grid_search(&space, |p| flexgen_evaluator(platform, model, &w, p))
            {
                let better = best
                    .map(|b| tput > b.predicted_throughput)
                    .unwrap_or(true);
                if better {
                    best = Some(Deployment {
                        policy,
                        workload: w,
                        predicted_throughput: tput,
                    });
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_models::DType;
    use lm_sim::AttentionPlacement;

    #[test]
    fn search_finds_a_feasible_fp16_deployment_for_opt30b() {
        let platform = presets::single_gpu_a100();
        let d = flexgen_search(&platform, &models::opt_30b(), 64, 8).expect("feasible");
        assert_eq!(d.policy.weights_dtype, DType::F16);
        assert_eq!(d.policy.kv_dtype, DType::F16);
        assert!(fits(&models::opt_30b(), &d.workload, &platform, &d.policy));
        assert!(d.predicted_throughput > 0.0);
    }

    #[test]
    fn opt30b_prefers_cpu_attention_for_long_generation() {
        // With n=128 the KV stream at fp16 is enormous; FlexGen's own
        // model should pick attention offloading (its §3.1 default).
        let platform = presets::single_gpu_a100();
        let d = flexgen_search(&platform, &models::opt_30b(), 64, 128).unwrap();
        assert_eq!(d.policy.attention, AttentionPlacement::Cpu);
    }

    #[test]
    fn bigger_model_cannot_hold_more_weights_on_gpu() {
        let platform = presets::single_gpu_a100();
        let d30 = flexgen_search(&platform, &models::opt_30b(), 64, 32).unwrap();
        let d66 = flexgen_search(&platform, &models::opt_66b(), 64, 32).unwrap();
        assert!(
            d66.policy.wg <= d30.policy.wg + 1e-9,
            "66B wg {} vs 30B wg {}",
            d66.policy.wg,
            d30.policy.wg
        );
    }

    #[test]
    fn search_respects_memory_feasibility_everywhere() {
        let platform = presets::single_gpu_a100();
        for gen in [8, 64] {
            let d = flexgen_search(&platform, &models::llama_30b(), 64, gen).unwrap();
            assert!(fits(&models::llama_30b(), &d.workload, &platform, &d.policy));
        }
    }
}
