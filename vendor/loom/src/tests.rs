//! Self-checks of the model checker: it must pass correct protocols,
//! find seeded atomicity violations, and report lost-wakeup deadlocks.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use crate::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn correct_counter_passes() {
    crate::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker ok");
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn torn_read_modify_write_is_found() {
    // Non-atomic increment (load; store) across two threads: some
    // interleaving loses an update, and the checker must reach it.
    let result = catch_unwind(AssertUnwindSafe(|| {
        crate::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker ok");
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("checker missed the lost update"),
        Err(p) => crate::sched::payload_to_string(p.as_ref()),
    };
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    // The consumer checks the flag *outside* the lock and then waits: if
    // the producer sets the flag and notifies in the window between the
    // check and the wait, the signal is lost and the consumer blocks
    // forever.
    let result = catch_unwind(AssertUnwindSafe(|| {
        crate::model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let consumer = thread::spawn(move || {
                let (m, cv) = &*s2;
                let need_wait = {
                    let g = m.lock();
                    !*g
                };
                if need_wait {
                    // BUG: the predicate can flip before we re-acquire.
                    let g = m.lock();
                    let _g2 = cv.wait(g);
                }
            });
            {
                let (m, cv) = &*state;
                let mut g = m.lock();
                *g = true;
                drop(g);
                cv.notify_all();
            }
            let _ = consumer.join();
        });
    }));
    let msg = match result {
        Ok(()) => panic!("checker missed the lost wakeup"),
        Err(p) => crate::sched::payload_to_string(p.as_ref()),
    };
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn condvar_handshake_passes() {
    crate::model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let consumer = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (m, cv) = &*state;
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_all();
        }
        consumer.join().expect("consumer ok");
    });
}

#[test]
fn mutex_exclusion_holds() {
    crate::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let mut g = n.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker ok");
        }
        assert_eq!(*n.lock(), 2);
    });
}
