//! Structural lints over operator dependency graphs (`LMA0xx`).
//!
//! These run before a graph is handed to the executor or to Algorithm 3:
//! the executor now *rejects* cyclic graphs instead of hanging, but the
//! lint layer additionally names the cycle, flags dead weight (orphan and
//! zero-cost nodes), and checks invariants the builder API enforces but
//! deserialized graphs may violate (edge bounds, self-edges, duplicate
//! edges).

use crate::diag::{Diagnostic, LintCode, Report};
use lm_parallelism::kahn;
use lm_parallelism::{OpGraph, OpKind};

/// Render a node as `index (name)` for diagnostics.
fn node_label(g: &OpGraph, u: usize) -> String {
    match g.nodes.get(u) {
        Some(n) => format!("node {u} ({})", n.name),
        None => format!("node {u}"),
    }
}

/// Run every graph lint over `g`.
pub fn lint_graph(g: &OpGraph) -> Report {
    let mut out = Vec::new();
    let n = g.len();

    // LMA005 / LMA006 / LMA003: raw edge-list hygiene. These precede the
    // Kahn-based lints because out-of-bounds targets would panic them.
    let mut structurally_sound = true;
    for (from, outs) in g.edges.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for &to in outs {
            if from >= n || to >= n {
                structurally_sound = false;
                out.push(Diagnostic::error(
                    LintCode::Lma005EdgeOutOfBounds,
                    format!("edge {from}->{to}"),
                    format!("edge endpoint outside the {n}-node graph"),
                ));
                continue;
            }
            if from == to {
                structurally_sound = false;
                out.push(Diagnostic::error(
                    LintCode::Lma006SelfEdge,
                    node_label(g, from),
                    "operator depends on its own output".to_string(),
                ));
                continue;
            }
            if !seen.insert(to) {
                out.push(Diagnostic::warn(
                    LintCode::Lma003DuplicateEdge,
                    format!("edge {from}->{to}"),
                    "dependency recorded more than once; in-degree counting \
                     would double-release the consumer"
                        .to_string(),
                ));
            }
        }
    }
    if g.edges.len() != n {
        structurally_sound = false;
        out.push(Diagnostic::error(
            LintCode::Lma005EdgeOutOfBounds,
            "graph".to_string(),
            format!(
                "adjacency list has {} rows for {n} nodes",
                g.edges.len()
            ),
        ));
    }

    // LMA004: zero-cost compute nodes. Concat/Elementwise/Transfer nodes
    // legitimately carry zero FLOPs, but a zero-FLOP *and* zero-byte
    // Addmm/Bmm/Softmax means the cost model will schedule a no-op and
    // the profile table degenerates.
    for (u, node) in g.nodes.iter().enumerate() {
        let is_compute = matches!(node.kind, OpKind::Addmm | OpKind::Bmm | OpKind::Softmax);
        if is_compute && node.flops == 0.0 && node.bytes == 0.0 {
            out.push(Diagnostic::warn(
                LintCode::Lma004ZeroCostNode,
                node_label(g, u),
                format!("{:?} node with zero FLOPs and zero bytes", node.kind),
            ));
        }
    }

    if !structurally_sound {
        // Kahn-based lints assume in-bounds edges.
        return Report::new(out);
    }

    // LMA001: cycles, with the witness walk.
    match kahn::analyze(g) {
        None => {
            let cycle = kahn::find_cycle(g).unwrap_or_default();
            let path: Vec<String> = cycle.iter().map(|&u| u.to_string()).collect();
            let closed = match cycle.first() {
                Some(first) => format!("{} -> {first}", path.join(" -> ")),
                None => path.join(" -> "),
            };
            out.push(Diagnostic::error(
                LintCode::Lma001CyclicGraph,
                "graph".to_string(),
                format!("dependency cycle: {closed}"),
            ));
        }
        Some(analysis) => {
            // LMA002: isolated nodes. In a multi-node graph a node with no
            // predecessors and no successors is dead weight the scheduler
            // still pays a launch for.
            if n > 1 {
                for (u, d) in g.in_degrees().into_iter().enumerate() {
                    if d == 0 && g.edges[u].is_empty() {
                        out.push(Diagnostic::warn(
                            LintCode::Lma002OrphanNode,
                            node_label(g, u),
                            "isolated node: no producers and no consumers".to_string(),
                        ));
                    }
                }
            }

            // LMA007: Transfer nodes sharing a wavefront with compute
            // operators. Transfers are meant to sit at wavefront
            // boundaries (staging between compute levels); a transfer
            // co-scheduled with compute in the same level competes for
            // the copy threads Algorithm 3 reserved separately.
            for (u, node) in g.nodes.iter().enumerate() {
                if node.kind != OpKind::Transfer {
                    continue;
                }
                let level = analysis.levels[u];
                let compute_peer = (0..n).find(|&v| {
                    analysis.levels[v] == level
                        && matches!(
                            g.nodes[v].kind,
                            OpKind::Addmm | OpKind::Bmm | OpKind::Softmax
                        )
                });
                if let Some(v) = compute_peer {
                    out.push(Diagnostic::warn(
                        LintCode::Lma007TransferOffBoundary,
                        node_label(g, u),
                        format!(
                            "transfer shares wavefront {level} with compute {}",
                            node_label(g, v)
                        ),
                    ));
                }
            }
        }
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_parallelism::attention_graph;

    #[test]
    fn shipped_attention_graphs_are_clean() {
        for groups in [1usize, 3, 7] {
            let r = lint_graph(&attention_graph(64, 128, 512, groups));
            assert!(r.is_clean(), "groups {groups}: {r}");
            assert_eq!(r.warning_count(), 0, "groups {groups}: {r}");
        }
    }

    #[test]
    fn cycle_reported_with_path() {
        let mut g = attention_graph(8, 16, 64, 2);
        let last = g.len() - 1;
        g.depend(last, 0);
        let r = lint_graph(&g);
        assert!(r.has(LintCode::Lma001CyclicGraph));
        assert!(!r.is_clean());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::Lma001CyclicGraph)
            .unwrap();
        assert!(d.message.contains("->"), "{}", d.message);
    }

    #[test]
    fn empty_graph_is_clean() {
        assert!(lint_graph(&OpGraph::new()).diagnostics.is_empty());
    }
}
