//! # lm-cachesim
//!
//! A set-associative LRU cache simulator with synthetic trace generators,
//! built to reproduce Table 5 of the LM-Offload paper: last-level cache
//! misses of the decode-phase workload under default PyTorch threading
//! versus LM-Offload's parallelism control.
//!
//! The substitution (DESIGN.md §2): the paper measures LLC misses with
//! hardware counters; we reproduce the *mechanism* — oversubscribed
//! co-running operators interleaving on a shared LLC — with a trace-driven
//! model whose geometry comes from `lm_hardware::CpuSpec`.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod cache;
pub mod hierarchy;
pub mod trace;
pub mod workload;

pub use cache::{Access, CacheStats, SetAssocCache};
pub use hierarchy::Hierarchy;
pub use trace::{interleave, tiled_matmul_trace, OpStream};
pub use workload::{run_contention, scale_misses, ContentionConfig, ContentionResult, ThreadSetting};
