//! The admission controller: turn a [`ServeConfig`] into a checked
//! [`ServePlan`] by consulting the analytic performance model and the KV
//! pool headroom.
//!
//! Slot count is chosen as the throughput argmax of the cost model:
//! because each decode step pays one shared layer fetch plus per-slot
//! terms, modelled tokens/s (`k / step(k)`) is non-decreasing in `k`, so
//! the argmax is the largest `k` the KV pool and the configured ceiling
//! admit. The resulting plan is linted by `lm-analyze`'s `LMA25x` family
//! before any request is served — an infeasible plan is a typed error
//! carrying the diagnostic report, the same contract as the engine's
//! strict pre-flight.

use crate::backend::ServeBackend;
use crate::slo::{DegradeLadder, SloPolicy};
use lm_analyze::{lint_serve, Report, ServeProbe, SloProbe};
use lm_engine::EngineError;
use lm_fault::{FaultInjector, RetryPolicy};
use lm_parallelism::{analyze, attention_block_graph};
use lm_trace::Tracer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Operator-facing serving knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Upper bound on concurrent sequences (slots).
    pub max_slots: usize,
    /// KV pool capacity in bytes; `0` derives `max_slots` worst-case
    /// leases so the configured ceiling is reachable.
    pub kv_pool_bytes: usize,
    /// Worst-case per-slot context length used to size leases and the
    /// plan; `0` derives a quarter of the model's context window (the
    /// traffic synthesizer's envelope).
    pub slot_context: usize,
    /// Head groups of the per-sequence attention graph (the Kahn-width
    /// bound input).
    pub head_groups: usize,
    /// Retry budget for admissions that hit transient pool pressure.
    pub retry: RetryPolicy,
    /// Fault plan attached to the serve KV pool.
    pub fault: FaultInjector,
    /// Span/metrics recorder (TTFT, queue depth, slot occupancy, ...).
    pub tracer: Tracer,
    /// Optional TTFT objective; `None` keeps the pre-SLO behaviour
    /// (no prediction, no shedding, no preemption).
    pub slo: Option<SloPolicy>,
    /// Fallback ladder the scheduler climbs when the SLO monitor calls
    /// for degradation; `None` disables that actuator.
    pub ladder: Option<Arc<dyn DegradeLadder>>,
    /// Flight recorder teed into scheduler decisions and injected
    /// faults; frozen into a post-mortem dump on the first observed SLO
    /// breach (DESIGN.md §13). Disabled by default.
    pub flight: lm_trace::FlightRecorder,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_slots: 8,
            kv_pool_bytes: 0,
            slot_context: 0,
            head_groups: 7,
            retry: RetryPolicy::none(),
            fault: FaultInjector::disabled(),
            tracer: Tracer::disabled(),
            slo: None,
            ladder: None,
            flight: lm_trace::FlightRecorder::disabled(),
        }
    }
}

/// The admission controller's output: how many sequences serve
/// concurrently and what that claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePlan {
    /// Concurrent sequences (each holds one KV lease).
    pub slots: usize,
    /// Planning context length behind the lease sizing.
    pub slot_context: usize,
    /// Worst-case lease per slot, bytes.
    pub kv_bytes_per_slot: u64,
    /// Serve KV pool capacity, bytes.
    pub kv_pool_bytes: u64,
    /// Kahn width (max concurrency) of the `slots`-sequence block graph.
    pub kahn_width: u64,
    /// Modelled seconds per decode step with every slot at the planning
    /// context.
    pub est_step_seconds: f64,
    /// Modelled steady-state throughput, tokens/second.
    pub est_tokens_per_s: f64,
}

impl ServePlan {
    /// The observation `lm-analyze`'s `LMA25x` lints judge.
    pub fn probe(&self) -> ServeProbe {
        ServeProbe {
            slots: self.slots as u64,
            kv_bytes_per_slot: self.kv_bytes_per_slot,
            kv_pool_bytes: self.kv_pool_bytes,
            block_size: self.slots as u64,
            kahn_width: self.kahn_width,
        }
    }
}

/// Sample the `LMA26x` lint observation for an SLO policy paired with a
/// plan: the floor is the cost model's one worst-case-padded group
/// prefill plus one full-occupancy decode step — the fastest any
/// admitted request can reach its first token under this plan.
pub fn slo_probe(
    plan: &ServePlan,
    backend: &dyn ServeBackend,
    slo: &SloPolicy,
    ladder: Option<&std::sync::Arc<dyn DegradeLadder>>,
) -> SloProbe {
    // A ladder is finite in practice; cap the census so a buggy
    // implementation cannot hang the pre-flight.
    let degrade_rungs = ladder.map_or(0, |l| {
        (1..=64).take_while(|&i| l.rung(i).is_some()).count() as u64
    });
    SloProbe {
        ttft_p99_slo_s: slo.ttft_p99_s,
        floor_ttft_s: backend.prefill_seconds(plan.slot_context, plan.slots)
            + plan.est_step_seconds,
        slots: plan.slots as u64,
        enforce: slo.enforce,
        preempt: slo.preempt,
        shed: slo.shed,
        degrade_rungs,
    }
}

/// Serving-layer failures.
#[derive(Debug)]
pub enum ServeError {
    /// The plan failed its `LMA25x` pre-flight; the report names each
    /// violation with stable codes.
    Plan(Report),
    /// The backend failed (engine construction, materialization).
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Plan(report) => {
                write!(f, "serve plan rejected by pre-flight analysis:\n{report}")
            }
            ServeError::Engine(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// Derive and lint the slot plan for `backend` under `cfg`.
pub fn plan_admission(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
) -> Result<ServePlan, ServeError> {
    let model = backend.model();
    let context = if cfg.slot_context > 0 {
        cfg.slot_context
    } else {
        ((model.max_seq_len / 4) as usize).max(2)
    };
    let per_slot = backend.kv_bytes_at(context).max(1);
    let pool_bytes = if cfg.kv_pool_bytes > 0 {
        cfg.kv_pool_bytes
    } else {
        cfg.max_slots.max(1) * per_slot
    };
    // Throughput argmax under the pool and the configured ceiling: the
    // shared weight stream makes k/step(k) non-decreasing, so take the
    // largest feasible k (and let the lint reject a pool too small for
    // even one).
    let by_pool = pool_bytes / per_slot;
    let slots = cfg.max_slots.min(by_pool.max(1)).max(1);
    let graph = attention_block_graph(
        1,
        slots as u64,
        context as u64,
        model.hidden,
        cfg.head_groups.max(1),
    );
    let kahn_width = analyze(&graph).map(|a| a.max_concurrency()).unwrap_or(0) as u64;
    let est_step_seconds = backend.decode_step_seconds(&vec![context as u64; slots]);
    let plan = ServePlan {
        slots,
        slot_context: context,
        kv_bytes_per_slot: per_slot as u64,
        kv_pool_bytes: pool_bytes as u64,
        kahn_width,
        est_step_seconds,
        est_tokens_per_s: if est_step_seconds > 0.0 {
            slots as f64 / est_step_seconds
        } else {
            0.0
        },
    };
    let report = lint_serve(&plan.probe());
    if !report.is_clean() {
        return Err(ServeError::Plan(report));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use lm_analyze::LintCode;

    #[test]
    fn default_plan_is_clean_and_model_guided() {
        let b = AnalyticBackend::opt_30b();
        let plan = plan_admission(&b, &ServeConfig::default()).unwrap();
        assert_eq!(plan.slots, 8);
        assert!(plan.kahn_width >= plan.slots as u64);
        assert!(plan.est_step_seconds > 0.0);
        assert!(plan.est_tokens_per_s > 0.0);
        assert!(lint_serve(&plan.probe()).is_clean());
    }

    #[test]
    fn pool_bound_caps_slots_below_ceiling() {
        let b = AnalyticBackend::opt_30b();
        let per_slot = {
            let p = plan_admission(&b, &ServeConfig::default()).unwrap();
            p.kv_bytes_per_slot as usize
        };
        let cfg = ServeConfig {
            kv_pool_bytes: 3 * per_slot + per_slot / 2,
            ..ServeConfig::default()
        };
        let plan = plan_admission(&b, &cfg).unwrap();
        assert_eq!(plan.slots, 3, "pool fits exactly three leases");
    }

    #[test]
    fn pool_too_small_for_one_slot_is_rejected_with_lma250() {
        let b = AnalyticBackend::opt_30b();
        let cfg = ServeConfig {
            kv_pool_bytes: 1024, // far below one lease
            ..ServeConfig::default()
        };
        match plan_admission(&b, &cfg) {
            Err(ServeError::Plan(report)) => {
                assert!(report.has(LintCode::Lma250SlotsExceedPool), "{report}")
            }
            other => panic!("expected plan rejection, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn bigger_blocks_estimate_higher_throughput() {
        let b = AnalyticBackend::opt_30b();
        let one = plan_admission(
            &b,
            &ServeConfig {
                max_slots: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let eight = plan_admission(&b, &ServeConfig::default()).unwrap();
        assert!(
            eight.est_tokens_per_s > one.est_tokens_per_s * 2.0,
            "amortised weights must show up in the estimate: {} vs {}",
            eight.est_tokens_per_s,
            one.est_tokens_per_s
        );
    }
}
