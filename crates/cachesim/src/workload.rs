//! LLC contention model of the decode-phase workload (Table 5).
//!
//! The six decode tasks spawn operators whose threads share the LLC. The
//! experiment maps a thread-level parallelism setting to a set of
//! co-running operator streams and a scheduling quantum, then measures
//! load/store misses on the simulated LLC:
//!
//! - the number of co-running streams follows the *inter-op* parallelism
//!   (each concurrently scheduled operator sweeps its own working set);
//! - oversubscription (`inter·intra` beyond the hardware thread count)
//!   shrinks the scheduling quantum, modelling the extra context switching
//!   the paper attributes the default setting's cache thrashing to (§4.1).

use crate::cache::{CacheStats, SetAssocCache};
use crate::trace::{interleave, OpStream};

/// A thread-level parallelism setting, as in §4.1/§5.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSetting {
    /// Operators allowed to co-run (`torch.set_num_interop_threads`).
    pub inter_op: u32,
    /// Threads per operator (`torch.set_num_threads`).
    pub intra_op: u32,
}

impl ThreadSetting {
    /// PyTorch defaults on the paper's machine: all 112 hyperthreads for
    /// inter-op, all 56 physical threads for intra-op.
    pub fn pytorch_default() -> Self {
        ThreadSetting {
            inter_op: 112,
            intra_op: 56,
        }
    }

    /// LM-Offload's chosen configuration on the same machine (§5.4):
    /// 12 inter-op, 16 intra-op.
    pub fn lm_offload() -> Self {
        ThreadSetting {
            inter_op: 12,
            intra_op: 16,
        }
    }

    /// Total software threads this setting wants.
    pub fn total_threads(&self) -> u32 {
        self.inter_op * self.intra_op
    }
}

/// Configuration of the contention experiment.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// LLC capacity in bytes (both sockets).
    pub llc_bytes: u64,
    pub llc_ways: u32,
    pub line_size: u32,
    /// Hardware threads available.
    pub hw_threads: u32,
    /// Read working set per operator stream, bytes.
    pub op_read_bytes: u64,
    /// Write working set per operator stream, bytes.
    pub op_write_bytes: u64,
    /// Sweeps per operator (temporal reuse available to a well-behaved
    /// schedule).
    pub sweeps: u32,
    /// Scheduling quantum (accesses per turn) when not oversubscribed.
    pub base_quantum: usize,
}

impl ContentionConfig {
    /// A scaled-down default that keeps simulation time in milliseconds
    /// while preserving the capacity ratios of the Xeon 6330 experiment:
    /// per-op working set ≈ LLC/13, so LM-Offload's 12 co-running
    /// operators fit the LLC and the default's 112 thrash it.
    /// 6 MiB at 12 ways × 64 B lines gives exactly 8192 sets.
    pub fn scaled_default() -> Self {
        ContentionConfig {
            llc_bytes: 6 << 20,
            llc_ways: 12,
            line_size: 64,
            hw_threads: 112,
            op_read_bytes: 320 << 10,
            op_write_bytes: 128 << 10,
            sweeps: 2,
            base_quantum: 4096,
        }
    }
}

/// Result of one contention run.
#[derive(Debug, Clone, Copy)]
pub struct ContentionResult {
    pub setting: ThreadSetting,
    pub streams: u32,
    pub quantum: usize,
    pub stats: CacheStats,
}

/// Run the contention experiment for one thread setting.
pub fn run_contention(cfg: &ContentionConfig, setting: ThreadSetting) -> ContentionResult {
    assert!(setting.inter_op > 0 && setting.intra_op > 0, "degenerate setting");
    // Streams that actually co-run are bounded by available hw threads
    // (an operator needs at least one thread to make progress).
    let streams = setting.inter_op.min(cfg.hw_threads).max(1);
    // Oversubscription shrinks the scheduling quantum proportionally.
    let oversub = (setting.total_threads() as f64 / cfg.hw_threads as f64).max(1.0);
    let quantum = ((cfg.base_quantum as f64 / oversub).round() as usize).max(1);

    let traces: Vec<Vec<_>> = (0..streams as u64)
        .map(|i| {
            OpStream {
                // Disjoint 1 GiB-aligned regions per stream.
                base: i << 30,
                read_bytes: cfg.op_read_bytes,
                write_bytes: cfg.op_write_bytes,
                sweeps: cfg.sweeps,
                line: cfg.line_size as u64,
            }
            .trace()
        })
        .collect();
    let merged = interleave(&traces, quantum);

    let mut cache = SetAssocCache::from_llc(cfg.llc_bytes, cfg.llc_ways, cfg.line_size);
    let stats = cache.run(merged);
    ContentionResult {
        setting,
        streams,
        quantum,
        stats,
    }
}

/// Scale simulated miss counts up to full-workload magnitudes: Table 5
/// counts misses over the entire OPT-30B decode, which touches
/// `full_bytes`; the simulation touched `sim_bytes`.
pub fn scale_misses(sim_misses: u64, sim_bytes: u64, full_bytes: u64) -> u64 {
    ((sim_misses as f64) * (full_bytes as f64 / sim_bytes as f64)).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_offload_setting_beats_default() {
        let cfg = ContentionConfig::scaled_default();
        let default = run_contention(&cfg, ThreadSetting::pytorch_default());
        let tuned = run_contention(&cfg, ThreadSetting::lm_offload());
        assert!(
            tuned.stats.load_misses < default.stats.load_misses,
            "tuned {} vs default {}",
            tuned.stats.load_misses,
            default.stats.load_misses
        );
        assert!(tuned.stats.store_misses < default.stats.store_misses);
        // Table 5 reports ~38-40% reduction; accept a generous band.
        let red = 1.0 - tuned.stats.misses() as f64 / default.stats.misses() as f64;
        assert!(red > 0.15, "only {:.0}% reduction", red * 100.0);
    }

    #[test]
    fn misses_monotone_in_co_running_streams() {
        let cfg = ContentionConfig::scaled_default();
        let mut last = 0;
        for inter in [2u32, 6, 24, 96] {
            let r = run_contention(
                &cfg,
                ThreadSetting {
                    inter_op: inter,
                    intra_op: 1,
                },
            );
            // Normalise per access: more streams -> higher miss *rate*.
            let rate = (r.stats.miss_rate() * 1e6) as u64;
            assert!(
                rate >= last,
                "miss rate decreased from {last} to {rate} at inter={inter}"
            );
            last = rate;
        }
    }

    #[test]
    fn few_fitting_streams_mostly_hit() {
        let cfg = ContentionConfig::scaled_default();
        // 2 streams x 448 KiB working set fit in 6 MiB LLC: after the
        // cold first sweep the second sweep hits (rate ≈ 1/sweeps).
        let r = run_contention(
            &cfg,
            ThreadSetting {
                inter_op: 2,
                intra_op: 8,
            },
        );
        assert!(
            r.stats.miss_rate() < 0.6,
            "fitting streams should hit after the cold sweep, rate {}",
            r.stats.miss_rate()
        );
    }

    #[test]
    fn oversubscription_shrinks_quantum() {
        let cfg = ContentionConfig::scaled_default();
        let a = run_contention(
            &cfg,
            ThreadSetting {
                inter_op: 4,
                intra_op: 4,
            },
        );
        let b = run_contention(
            &cfg,
            ThreadSetting {
                inter_op: 4,
                intra_op: 112,
            },
        );
        assert!(b.quantum < a.quantum);
    }

    #[test]
    fn scaling_is_linear() {
        assert_eq!(scale_misses(100, 10, 1000), 10_000);
        assert_eq!(scale_misses(7, 7, 7), 7);
    }
}
