//! Rotary positional embeddings (RoPE) — LLaMA's position encoding,
//! applied to the query and key vectors per head before the attention
//! scores are computed.
//!
//! Each head dimension is split into pairs `(x_{2i}, x_{2i+1})` rotated by
//! the position-dependent angle `pos · θ^(-2i/d)` with θ = 10000. The
//! defining property (tested): attention scores depend only on *relative*
//! position — shifting both query and key positions by the same offset
//! leaves `q·k` unchanged.

use crate::tensor::Tensor;

/// Base frequency of the rotation spectrum (LLaMA's 10000).
pub const ROPE_THETA: f32 = 10_000.0;

/// Rotate one head slice `x[.. head_dim]` in place for `pos`.
fn rotate_head(x: &mut [f32], pos: usize) {
    let hd = x.len();
    let half = hd / 2;
    for i in 0..half {
        let freq = ROPE_THETA.powf(-(2.0 * i as f32) / hd as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Apply RoPE in place to a `[batch, hidden]` tensor whose rows are all at
/// position `pos` (the decode case).
pub fn apply_rope_decode(x: &mut Tensor, num_heads: usize, pos: usize) {
    assert_eq!(x.rank(), 2, "decode RoPE expects [batch, hidden]");
    let hidden = x.dim(1);
    assert_eq!(hidden % num_heads, 0, "hidden not divisible by heads");
    let hd = hidden / num_heads;
    assert_eq!(hd % 2, 0, "head_dim must be even for RoPE");
    let batch = x.dim(0);
    let data = x.data_mut();
    for b in 0..batch {
        for h in 0..num_heads {
            let base = b * hidden + h * hd;
            rotate_head(&mut data[base..base + hd], pos);
        }
    }
}

/// Apply RoPE in place to a `[batch, s, hidden]` tensor whose sequence
/// dimension starts at absolute position `start_pos` (the prefill case).
pub fn apply_rope_prefill(x: &mut Tensor, num_heads: usize, start_pos: usize) {
    assert_eq!(x.rank(), 3, "prefill RoPE expects [batch, s, hidden]");
    let (batch, s, hidden) = (x.dim(0), x.dim(1), x.dim(2));
    assert_eq!(hidden % num_heads, 0, "hidden not divisible by heads");
    let hd = hidden / num_heads;
    assert_eq!(hd % 2, 0, "head_dim must be even for RoPE");
    let data = x.data_mut();
    for b in 0..batch {
        for t in 0..s {
            for h in 0..num_heads {
                let base = (b * s + t) * hidden + h * hd;
                rotate_head(&mut data[base..base + hd], start_pos + t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::dot;

    #[test]
    fn position_zero_is_identity() {
        let x = Tensor::randn([2, 16], 1.0, 1);
        let mut y = x.clone();
        apply_rope_decode(&mut y, 4, 0);
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn rotation_preserves_norm() {
        let x = Tensor::randn([3, 32], 1.0, 2);
        let mut y = x.clone();
        apply_rope_decode(&mut y, 4, 17);
        for b in 0..3 {
            let nx: f32 = x.row(b).iter().map(|v| v * v).sum();
            let ny: f32 = y.row(b).iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-3, "{nx} vs {ny}");
        }
    }

    #[test]
    fn scores_depend_only_on_relative_position() {
        // dot(rope(q, p+k), rope(kv, p'+k)) is invariant in k.
        let q = Tensor::randn([1, 8], 1.0, 3);
        let kv = Tensor::randn([1, 8], 1.0, 4);
        let score_at = |pq: usize, pk: usize| {
            let mut a = q.clone();
            let mut b = kv.clone();
            apply_rope_decode(&mut a, 1, pq);
            apply_rope_decode(&mut b, 1, pk);
            dot(a.row(0), b.row(0))
        };
        let base = score_at(5, 2);
        let shifted = score_at(5 + 11, 2 + 11);
        assert!((base - shifted).abs() < 1e-3, "{base} vs {shifted}");
        // Different relative distance must change the score for random
        // vectors.
        let other = score_at(5, 3);
        assert!((base - other).abs() > 1e-6);
    }

    #[test]
    fn prefill_matches_decode_per_position() {
        let (b, s, h, heads) = (2usize, 4usize, 16usize, 2usize);
        let x = Tensor::randn([b, s, h], 1.0, 5);
        let mut pre = x.clone();
        apply_rope_prefill(&mut pre, heads, 3);
        for t in 0..s {
            // Extract position t and apply the decode path at 3 + t.
            let mut rows = Vec::with_capacity(b * h);
            for bi in 0..b {
                rows.extend_from_slice(&x.data()[(bi * s + t) * h..][..h]);
            }
            let mut dec = Tensor::from_vec([b, h], rows);
            apply_rope_decode(&mut dec, heads, 3 + t);
            for bi in 0..b {
                let p = &pre.data()[(bi * s + t) * h..][..h];
                for (a, c) in p.iter().zip(dec.row(bi)) {
                    assert!((a - c).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "head_dim must be even")]
    fn odd_head_dim_rejected() {
        let mut x = Tensor::zeros([1, 3]);
        apply_rope_decode(&mut x, 1, 1);
    }
}
