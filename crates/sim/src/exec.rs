//! Event-driven execution of the decode loop (Algorithm 1).
//!
//! Where the analytic model assumes perfect overlap (`T_gen = max(...)`),
//! this simulator *executes* the six tasks against explicit hardware
//! resources — the H2D link, the D2H link, the CPU and the GPU — with
//! FIFO queueing, per-batch dependency chains, and layer-to-layer
//! pipelining (loading layer `j+1`'s weights while layer `j` computes).
//! The integration tests check the analytic model against this timeline.

use crate::tasks::CostProvider;
use lm_trace::{Span, TaskKind};
use lm_fault::FaultInjector;
use lm_models::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A serially-reusable hardware resource with FIFO semantics.
#[derive(Debug, Clone, Default)]
struct Resource {
    free_at: f64,
    busy: f64,
}

impl Resource {
    /// Occupy the resource for `dur` seconds no earlier than `ready`;
    /// returns the completion time.
    fn acquire(&mut self, ready: f64, dur: f64) -> f64 {
        let start = ready.max(self.free_at);
        self.free_at = start + dur;
        self.busy += dur;
        self.free_at
    }

}

/// Busy-time accounting per task kind (Fig. 8's bars).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskBreakdown {
    pub busy: HashMap<String, f64>,
}

impl TaskBreakdown {
    fn add(&mut self, kind: TaskKind, dur: f64) {
        *self.busy.entry(kind.name().to_string()).or_insert(0.0) += dur;
    }

    pub fn get(&self, kind: TaskKind) -> f64 {
        self.busy.get(kind.name()).copied().unwrap_or(0.0)
    }

    /// Total busy time across all kinds (the serial-execution time the
    /// §5.4 study reports per task).
    pub fn total(&self) -> f64 {
        self.busy.values().sum()
    }
}

/// Result of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Decode-phase makespan, seconds.
    pub decode_time: f64,
    /// Prefill-phase time, seconds.
    pub prefill_time: f64,
    /// Tokens generated (block size × generation length).
    pub tokens: u64,
    /// Per-task busy time.
    pub breakdown: TaskBreakdown,
    /// tokens / (prefill + decode).
    pub throughput: f64,
}

/// Simulate prefill + decode for `num_layers` layers under `provider`.
///
/// The decode phase follows Algorithm 1's triple loop. Dependencies:
/// - `compute(i, j, k)` needs layer `j`'s weights for step `i`, that
///   batch's cache/activation loads, and `compute(i, j-1, k)` (its input
///   activations) — with layer `-1` of step `i` chaining to layer `l-1`
///   of step `i-1`;
/// - stores follow their batch's compute;
/// - loads/stores queue FIFO on the links, compute queues on CPU/GPU.
pub fn simulate(provider: &impl CostProvider, w: &Workload, num_layers: u32) -> SimReport {
    simulate_impl(provider, w, num_layers, None, None).0
}

/// Like [`simulate`], but with an attached fault injector: per
/// `(step, layer)` window, the H2D/D2H links may run degraded
/// (`"sim.h2d"` / `"sim.d2h"` sites — transfer durations stretch by the
/// inverse bandwidth factor) and the weight stream may stall (virtual
/// extra latency, no wall-clock sleep). The FIFO resources then re-form
/// the overlap around the stretched tasks, so the schedule degrades
/// gracefully instead of serialising. A disabled injector reproduces
/// [`simulate`] bit-for-bit.
pub fn simulate_faulted(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    fault: &FaultInjector,
) -> SimReport {
    simulate_impl(provider, w, num_layers, None, Some(fault)).0
}

/// Like [`simulate`], additionally recording per-task [`Span`]s for the
/// first `trace_steps` decode steps (timelines of long runs are huge; the
/// overlap structure repeats per step).
pub fn simulate_traced(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    trace_steps: u64,
) -> (SimReport, Vec<Span>) {
    let mut spans = Vec::new();
    let report = simulate_impl(provider, w, num_layers, Some((&mut spans, trace_steps)), None).0;
    (report, spans)
}

/// Per-task busy seconds the analytic cost model predicts for the first
/// `steps` decode steps — the "predicted" side of an `lm_trace`
/// drift report against the spans from [`simulate_traced`]. The loop
/// structure, zero-cost elisions and floating-point accumulation order
/// mirror [`simulate`] exactly, so replaying the model against the
/// simulator's own timeline yields drift ratios of 1.0 by construction
/// (pinned by the drift golden test).
pub fn predicted_task_totals(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    steps: u64,
) -> Vec<(TaskKind, f64)> {
    let mut totals = [0.0f64; 7];
    let decode_steps = w.gen_len.saturating_sub(1).min(steps);
    for i in 0..decode_steps {
        for _j in 0..num_layers {
            totals[TaskKind::LoadWeight.index()] += provider.load_weight(i);
            for _k in 0..w.num_batches {
                let lc = provider.load_cache(i);
                if lc > 0.0 {
                    totals[TaskKind::LoadCache.index()] += lc;
                }
                let la = provider.load_activation(i);
                if la > 0.0 {
                    totals[TaskKind::LoadActivation.index()] += la;
                }
                let cc = provider.compute_cpu(i);
                if cc > 0.0 {
                    totals[TaskKind::ComputeCpu.index()] += cc;
                }
                totals[TaskKind::ComputeGpu.index()] += provider.compute_gpu(i);
                let sc = provider.store_cache(i);
                if sc > 0.0 {
                    totals[TaskKind::StoreCache.index()] += sc;
                }
                let sa = provider.store_activation(i);
                if sa > 0.0 {
                    totals[TaskKind::StoreActivation.index()] += sa;
                }
            }
        }
    }
    TaskKind::ALL
        .iter()
        .map(|&k| (k, totals[k.index()]))
        .collect()
}

#[allow(unused_mut)]
fn simulate_impl(
    provider: &impl CostProvider,
    w: &Workload,
    num_layers: u32,
    mut trace: Option<(&mut Vec<Span>, u64)>,
    fault: Option<&FaultInjector>,
) -> (SimReport,) {
    let l = num_layers as usize;
    let nb = w.num_batches as usize;
    let decode_steps = w.gen_len.saturating_sub(1);

    let mut h2d = Resource::default();
    let mut d2h = Resource::default();
    let mut cpu = Resource::default();
    let mut gpu = Resource::default();
    let mut breakdown = TaskBreakdown::default();

    // Prefill: layer-sequential on the GPU (all batches together).
    let prefill_time = provider.prefill_layer() * l as f64;
    let mut clock = prefill_time;

    // compute_done[k]: completion time of batch k's previous-layer GPU
    // compute (the activation dependency chain).
    let mut compute_done = vec![clock; nb];

    for i in 0..decode_steps {
        for j in 0..l {
            let mut record = |spans: &mut Option<(&mut Vec<Span>, u64)>,
                              kind: TaskKind,
                              batch: Option<u32>,
                              end: f64,
                              dur: f64| {
                if let Some((spans, cap)) = spans {
                    if i < *cap {
                        spans.push(Span {
                            kind,
                            step: i,
                            layer: j as u32,
                            batch,
                            start: end - dur,
                            end,
                        });
                    }
                }
            };
            // Injected link misbehaviour for this (step, layer) window: a
            // degraded link stretches every transfer in the window by the
            // inverse bandwidth factor; a stall adds fixed latency to the
            // weight stream. With faults off the multipliers are exactly
            // 1.0 and the arithmetic below is bit-identical to clean runs.
            let mut h2d_stretch = 1.0;
            let mut d2h_stretch = 1.0;
            let mut stall_s = 0.0;
            if let Some(fi) = fault {
                let key = i * l as u64 + j as u64;
                if let Some(factor) = fi.bandwidth_factor("sim.h2d", key) {
                    h2d_stretch = 1.0 / factor.max(1e-9);
                }
                if let Some(factor) = fi.bandwidth_factor("sim.d2h", key) {
                    d2h_stretch = 1.0 / factor.max(1e-9);
                }
                if let Some(stall) = fi.transfer_stall("sim.h2d", key) {
                    stall_s = stall.as_secs_f64();
                }
            }
            // Weights for this layer stream once per (step, layer); they
            // were prefetchable since the previous layer started, so they
            // queue on the link as soon as it frees.
            let lw = provider.load_weight(i) * h2d_stretch + stall_s;
            let weights_ready = h2d.acquire(0.0, lw);
            breakdown.add(TaskKind::LoadWeight, lw);
            record(&mut trace, TaskKind::LoadWeight, None, weights_ready, lw);

            for (k, batch_done) in compute_done.iter_mut().enumerate() {
                let k32 = Some(k as u32);
                // Prefetch this batch's cache and activations.
                let lc = provider.load_cache(i) * h2d_stretch;
                let cache_ready = if lc > 0.0 {
                    breakdown.add(TaskKind::LoadCache, lc);
                    let t = h2d.acquire(0.0, lc);
                    record(&mut trace, TaskKind::LoadCache, k32, t, lc);
                    t
                } else {
                    0.0
                };
                let la = provider.load_activation(i) * h2d_stretch;
                let act_ready = if la > 0.0 {
                    breakdown.add(TaskKind::LoadActivation, la);
                    let t = h2d.acquire(0.0, la);
                    record(&mut trace, TaskKind::LoadActivation, k32, t, la);
                    t
                } else {
                    0.0
                };

                // Compute: CPU part (offloaded attention) then GPU part.
                let ready = weights_ready
                    .max(cache_ready)
                    .max(act_ready)
                    .max(*batch_done);
                let cc = provider.compute_cpu(i);
                let cpu_done = if cc > 0.0 {
                    breakdown.add(TaskKind::ComputeCpu, cc);
                    let t = cpu.acquire(ready, cc);
                    record(&mut trace, TaskKind::ComputeCpu, k32, t, cc);
                    t
                } else {
                    ready
                };
                let cg = provider.compute_gpu(i);
                breakdown.add(TaskKind::ComputeGpu, cg);
                let gpu_done = gpu.acquire(cpu_done, cg);
                record(&mut trace, TaskKind::ComputeGpu, k32, gpu_done, cg);
                *batch_done = gpu_done;

                // Stores trail the compute on the D2H link.
                let sc = provider.store_cache(i) * d2h_stretch;
                if sc > 0.0 {
                    breakdown.add(TaskKind::StoreCache, sc);
                    let t = d2h.acquire(gpu_done, sc);
                    record(&mut trace, TaskKind::StoreCache, k32, t, sc);
                }
                let sa = provider.store_activation(i) * d2h_stretch;
                if sa > 0.0 {
                    breakdown.add(TaskKind::StoreActivation, sa);
                    let t = d2h.acquire(gpu_done, sa);
                    record(&mut trace, TaskKind::StoreActivation, k32, t, sa);
                }
            }
        }
    }

    // The run ends when every batch's last compute and all stores drain.
    clock = compute_done
        .iter()
        .copied()
        .fold(clock, f64::max)
        .max(d2h.free_at)
        .max(h2d.free_at.min(f64::MAX));
    let decode_time = (clock - prefill_time).max(0.0);
    let tokens = w.tokens_generated();
    let total = prefill_time + decode_time;
    (SimReport {
        decode_time,
        prefill_time,
        tokens,
        breakdown,
        throughput: tokens as f64 / total.max(f64::MIN_POSITIVE),
    },)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::BaseCostModel;
    use crate::policy::{AttentionPlacement, Policy};
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_models::Workload;

    fn run(policy: Policy, w: Workload) -> (SimReport, BaseCostModel) {
        let m = BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &w,
            policy,
        );
        (simulate(&m, &w, m.model.num_layers), m)
    }

    #[test]
    fn simulated_close_to_analytic_when_one_task_dominates() {
        // Weight-stream-bound configuration: the analytic max() model and
        // the event-driven timeline should agree within pipeline slack.
        let w = Workload::new(64, 16, 64, 4);
        let (report, model) = run(Policy::flexgen_default(), w);
        let analytic = model.latency(false);
        let simulated = report.prefill_time + report.decode_time;
        let rel = (simulated - analytic).abs() / analytic;
        assert!(
            rel < 0.30,
            "analytic {analytic:.3}s vs simulated {simulated:.3}s (rel {rel:.2})"
        );
    }

    #[test]
    fn breakdown_accounts_all_six_tasks_gpu_attention() {
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let w = Workload::new(16, 4, 8, 2);
        let (report, _) = run(p, w);
        for kind in [
            TaskKind::LoadWeight,
            TaskKind::LoadCache,
            TaskKind::LoadActivation,
            TaskKind::StoreCache,
            TaskKind::StoreActivation,
            TaskKind::ComputeGpu,
        ] {
            assert!(report.breakdown.get(kind) > 0.0, "{}", kind.name());
        }
        assert_eq!(report.breakdown.get(TaskKind::ComputeCpu), 0.0);
    }

    #[test]
    fn cpu_attention_has_no_cache_tasks() {
        let w = Workload::new(16, 4, 8, 2);
        let (report, _) = run(Policy::flexgen_default(), w);
        assert_eq!(report.breakdown.get(TaskKind::LoadCache), 0.0);
        assert_eq!(report.breakdown.get(TaskKind::StoreCache), 0.0);
        assert!(report.breakdown.get(TaskKind::ComputeCpu) > 0.0);
    }

    #[test]
    fn throughput_improves_with_gpu_resident_weights() {
        let w = Workload::new(64, 8, 64, 4);
        let (all_stream, _) = run(Policy::flexgen_default(), w);
        let mut p = Policy::flexgen_default();
        p.wg = 0.8;
        let (mostly_resident, _) = run(p, w);
        assert!(mostly_resident.throughput > all_stream.throughput * 1.5);
    }

    #[test]
    fn single_token_run_is_prefill_only() {
        let w = Workload::new(16, 1, 8, 2);
        let (report, _) = run(Policy::flexgen_default(), w);
        assert_eq!(report.decode_time, 0.0);
        assert!(report.prefill_time > 0.0);
    }

    #[test]
    fn traced_spans_respect_resource_exclusivity() {
        use lm_trace::resource_overlaps;
        let w = Workload::new(16, 4, 8, 3);
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let m = BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &w,
            p,
        );
        let (report, spans) = simulate_traced(&m, &w, 4, 2);
        assert!(!spans.is_empty());
        assert!(resource_overlaps(&spans).is_empty(), "FIFO resources must not overlap");
        // Tracing must not change the result.
        let untraced = simulate(&m, &w, 4);
        assert_eq!(report.throughput, untraced.throughput);
        // Span cap respected: only steps 0 and 1 recorded.
        assert!(spans.iter().all(|s| s.step < 2));
    }

    #[test]
    fn traced_spans_cover_all_six_tasks_under_gpu_attention() {
        let w = Workload::new(16, 3, 8, 2);
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let m = BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &w,
            p,
        );
        let (_, spans) = simulate_traced(&m, &w, 3, 10);
        let kinds: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.kind.name()).collect();
        for k in ["load_weight", "load_cache", "load_activation", "store_cache", "store_activation", "compute_gpu"] {
            assert!(kinds.contains(k), "missing {k}");
        }
    }

    #[test]
    fn predicted_totals_match_traced_spans_exactly() {
        let w = Workload::new(16, 4, 8, 3);
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let m = BaseCostModel::new(&presets::single_gpu_a100(), &models::opt_30b(), &w, p);
        let steps = 3;
        let (_, spans) = simulate_traced(&m, &w, 6, steps);
        let predicted = predicted_task_totals(&m, &w, 6, steps);
        let mut observed = [0.0f64; 7];
        for s in &spans {
            observed[s.kind.index()] += s.duration();
        }
        for (kind, pred) in predicted {
            let obs = observed[kind.index()];
            assert!(
                (obs - pred).abs() <= 1e-9 * pred.max(1.0),
                "{}: predicted {pred} vs observed {obs}",
                kind.name()
            );
        }
    }

    #[test]
    fn disabled_injector_reproduces_clean_run_exactly() {
        use lm_fault::FaultInjector;
        let w = Workload::new(32, 8, 16, 2);
        let m = BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &w,
            Policy::flexgen_default(),
        );
        let clean = simulate(&m, &w, m.model.num_layers);
        let off = simulate_faulted(&m, &w, m.model.num_layers, &FaultInjector::disabled());
        assert_eq!(clean.decode_time, off.decode_time);
        assert_eq!(clean.prefill_time, off.prefill_time);
        assert_eq!(clean.throughput, off.throughput);
    }

    #[test]
    fn link_degradation_slows_decode_but_schedule_reoverlaps() {
        use lm_fault::{FaultConfig, FaultInjector};
        let w = Workload::new(64, 16, 64, 4);
        let m = BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &w,
            Policy::flexgen_default(),
        );
        let clean = simulate(&m, &w, m.model.num_layers);
        let cfg = FaultConfig {
            link_degrade_rate: 0.4,
            link_degrade_factor: 0.25,
            stall_rate: 0.1,
            stall_ms: 5,
            ..FaultConfig::quiescent(17)
        };
        let fault = FaultInjector::new(cfg.clone());
        let degraded = simulate_faulted(&m, &w, m.model.num_layers, &fault);
        assert!(
            degraded.decode_time > clean.decode_time * 1.05,
            "degraded {} vs clean {}",
            degraded.decode_time,
            clean.decode_time
        );
        let stats = fault.stats();
        assert!(stats.link_degrades > 0);
        assert!(stats.transfer_stalls > 0);
        // The six-task schedule must re-form the overlap around the
        // stretched transfers, not serialise: makespan < serial sum.
        assert!(
            degraded.decode_time < degraded.breakdown.total(),
            "schedule must still overlap under degradation"
        );
        // Deterministic by seed: a fresh injector with the same config
        // reproduces the exact timeline and event sequence.
        let fault2 = FaultInjector::new(cfg);
        let again = simulate_faulted(&m, &w, m.model.num_layers, &fault2);
        assert_eq!(degraded.decode_time, again.decode_time);
        assert_eq!(fault.events(), fault2.events());
    }

    #[test]
    fn longer_generation_takes_longer() {
        let (short, _) = run(Policy::flexgen_default(), Workload::new(64, 4, 32, 2));
        let (long, _) = run(Policy::flexgen_default(), Workload::new(64, 16, 32, 2));
        assert!(long.decode_time > short.decode_time * 3.0);
    }
}
