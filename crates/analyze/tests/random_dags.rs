//! Property: the graph-lint verdict agrees with Kahn's algorithm. A
//! random graph built from forward edges only (producer index < consumer
//! index) is acyclic by construction, so `kahn::analyze` succeeds and the
//! lints must report no errors; closing any existing edge backwards makes
//! a cycle, `analyze` fails, and `LMA001` must fire with a genuine
//! witness walk.

#![allow(clippy::unwrap_used)]

use lm_analyze::{lint_graph, LintCode};
use lm_parallelism::{kahn, OpGraph, OpKind};
use proptest::prelude::*;

/// Deterministic xorshift so a failing case replays from its seed.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Random forward-edge graph: every edge goes from a lower to a higher
/// node index, so the graph is a DAG for any seed/density.
fn random_dag(n: usize, seed: u64, density_pct: u64) -> OpGraph {
    let mut g = OpGraph::new();
    let kinds = [
        OpKind::Addmm,
        OpKind::Bmm,
        OpKind::Softmax,
        OpKind::Concat,
        OpKind::Elementwise,
    ];
    let mut state = seed | 1;
    for i in 0..n {
        let kind = kinds[(next(&mut state) % kinds.len() as u64) as usize];
        let flops = 1.0 + (next(&mut state) % 1000) as f64;
        g.add(format!("n{i}"), kind, flops, flops * 8.0);
    }
    for from in 0..n {
        for to in (from + 1)..n {
            if next(&mut state) % 100 < density_pct {
                g.depend(from, to);
            }
        }
    }
    g
}

proptest! {
    #[test]
    fn forward_edge_graphs_pass_error_lints(
        n in 2usize..24,
        seed in 1u64..500,
        density in 10u64..80,
    ) {
        let g = random_dag(n, seed, density);
        prop_assert!(kahn::analyze(&g).is_some(), "forward edges must be acyclic");
        let r = lint_graph(&g);
        prop_assert!(
            r.is_clean(),
            "lints disagree with Kahn on a DAG:\n{r}"
        );
        prop_assert!(!r.has(LintCode::Lma001CyclicGraph));
    }

    #[test]
    fn reversing_an_edge_fires_lma001_iff_kahn_fails(
        n in 3usize..24,
        seed in 1u64..500,
        density in 20u64..80,
    ) {
        let mut g = random_dag(n, seed, density);
        // Close the first recorded edge backwards; if the graph has no
        // edges the case degenerates to the DAG property above.
        let back = (0..g.len()).find_map(|u| g.edges[u].first().map(|&v| (v, u)));
        if let Some((from, to)) = back {
            g.depend(from, to);
            prop_assert!(kahn::analyze(&g).is_none(), "2-cycle must defeat Kahn");
            let r = lint_graph(&g);
            prop_assert!(r.has(LintCode::Lma001CyclicGraph), "{r}");
            prop_assert!(!r.is_clean());
            // The witness is a real closed walk over graph edges.
            let cycle = kahn::find_cycle(&g).unwrap();
            for w in cycle.windows(2) {
                prop_assert!(g.edges[w[0]].contains(&w[1]), "{cycle:?}");
            }
            let (first, last) = (cycle[0], *cycle.last().unwrap());
            prop_assert!(g.edges[last].contains(&first), "{cycle:?}");
        }
    }

    #[test]
    fn lint_verdict_matches_kahn_on_arbitrary_mutations(
        n in 2usize..20,
        seed in 1u64..300,
        density in 10u64..70,
        extra_from in 0usize..20,
        extra_to in 0usize..20,
    ) {
        // An arbitrary extra edge (any direction, possibly cyclic) keeps
        // the equivalence: errors present iff Kahn fails. Self-edges and
        // out-of-range indices are excluded — they are separate lints
        // (LMA005/006) that Kahn's counting cannot see.
        let mut g = random_dag(n, seed, density);
        let (from, to) = (extra_from % n, extra_to % n);
        if from != to {
            g.depend(from, to);
        }
        let kahn_ok = kahn::analyze(&g).is_some();
        let r = lint_graph(&g);
        prop_assert_eq!(
            r.is_clean(),
            kahn_ok,
            "lint errors and Kahn disagree:\n{}",
            r
        );
    }
}
