//! The decision scenarios of §3.2's "How to use the models": three
//! comparisons the performance models answer without running anything.

use crate::provider::{quant_aware_provider, ThreadFactors};
use crate::quant_model::QuantCostParams;
use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};
use lm_sim::tasks::CostProvider;
use lm_sim::{AttentionPlacement, Policy};
use serde::{Deserialize, Serialize};

/// One advisory verdict: the two modelled costs and the recommendation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Verdict {
    /// Modelled cost of the status-quo option, seconds.
    pub baseline_cost: f64,
    /// Modelled cost of the candidate option, seconds.
    pub candidate_cost: f64,
    /// Whether the candidate is predicted to be beneficial.
    pub beneficial: bool,
}

fn verdict(baseline: f64, candidate: f64) -> Verdict {
    Verdict {
        baseline_cost: baseline,
        candidate_cost: candidate,
        beneficial: candidate < baseline,
    }
}

/// The advisor: answers the three §3.2 questions for a given deployment
/// context.
#[derive(Debug, Clone)]
pub struct Advisor {
    pub platform: Platform,
    pub model: ModelConfig,
    pub workload: Workload,
    pub params: QuantCostParams,
    pub threads: ThreadFactors,
}

impl Advisor {
    pub fn new(
        platform: &Platform,
        model: &ModelConfig,
        workload: &Workload,
        params: QuantCostParams,
    ) -> Self {
        Advisor {
            platform: platform.clone(),
            model: model.clone(),
            workload: *workload,
            params,
            threads: ThreadFactors::Default,
        }
    }

    fn latency_of(&self, policy: Policy) -> f64 {
        quant_aware_provider(
            &self.platform,
            &self.model,
            &self.workload,
            policy,
            self.params,
            self.threads,
        )
        .latency(false)
    }

    /// Scenario 1 — "Determine whether weight quantization is beneficial":
    /// compare `load_weight` without quantization against Eq. 3 + Eq. 4,
    /// end to end for the given base policy.
    pub fn weight_quantization(&self, base: Policy) -> Verdict {
        let mut fp16 = base;
        fp16.weights_dtype = DType::F16;
        let mut int4 = base;
        int4.weights_dtype = DType::Int4;
        verdict(self.latency_of(fp16), self.latency_of(int4))
    }

    /// Scenario 2 — "Determine whether KV cache quantization is
    /// beneficial": compare `load_cache + store_cache` without
    /// quantization against Eq. 6 + Eq. 7. Only meaningful with GPU
    /// attention (with CPU attention the cache never moves).
    pub fn kv_quantization(&self, base: Policy) -> Verdict {
        let mut fp16 = base;
        fp16.kv_dtype = DType::F16;
        let mut int4 = base;
        int4.kv_dtype = DType::Int4;
        verdict(self.latency_of(fp16), self.latency_of(int4))
    }

    /// Scenario 3 — "Determine the benefit of attention offloading with
    /// quantization": compare the best no-offload configuration (Eq. 8+9
    /// side) against the best offloaded one (Eq. 3-7 side), each with its
    /// preferred quantization choices.
    pub fn attention_offloading(&self, base: Policy) -> Verdict {
        let best_with = |attention: AttentionPlacement| -> f64 {
            let mut best = f64::INFINITY;
            for wd in [DType::F16, DType::Int4] {
                for kd in [DType::F16, DType::Int4] {
                    let mut p = base;
                    p.attention = attention;
                    p.weights_dtype = wd;
                    p.kv_dtype = kd;
                    if attention == AttentionPlacement::Cpu {
                        p.cg = 0.0;
                    }
                    if p.validate().is_ok() {
                        best = best.min(self.latency_of(p));
                    }
                }
            }
            best
        };
        verdict(
            best_with(AttentionPlacement::Gpu),
            best_with(AttentionPlacement::Cpu),
        )
    }

    /// Direct per-task comparison for reporting: the six-task costs of a
    /// policy at a given decode step.
    pub fn task_costs(&self, policy: Policy, token: u64) -> [(String, f64); 7] {
        let p = quant_aware_provider(
            &self.platform,
            &self.model,
            &self.workload,
            policy,
            self.params,
            self.threads,
        );
        lm_trace::TaskKind::ALL.map(|k| (k.name().to_string(), p.cost(k, token)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn advisor() -> Advisor {
        Advisor::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::motivation(),
            QuantCostParams::flexgen_kernels(),
        )
    }

    #[test]
    fn weight_quant_not_beneficial_with_cpu_attention() {
        // Fig. 3's left cluster: with attention offloaded, quantization
        // loses (the dequant overhead outweighs the smaller stream on
        // FlexGen kernels).
        let a = advisor();
        let v = a.weight_quantization(Policy::flexgen_default());
        assert!(!v.beneficial, "{v:?}");
    }

    #[test]
    fn kv_quant_beneficial_with_gpu_attention() {
        let a = advisor();
        let mut base = Policy::flexgen_default();
        base.attention = AttentionPlacement::Gpu;
        let v = a.kv_quantization(base);
        assert!(v.beneficial, "{v:?}");
        // And the advantage is large (the 78% of Fig. 3).
        assert!(v.baseline_cost > v.candidate_cost * 1.3);
    }

    #[test]
    fn kv_quant_harmful_with_cpu_attention() {
        // With CPU attention the KV cache never crosses the link, so
        // compression only adds CPU-side (de)quant work to the offloaded
        // attention: the verdict must be "not beneficial".
        let a = advisor();
        let v = a.kv_quantization(Policy::flexgen_default());
        assert!(!v.beneficial);
        assert!(v.candidate_cost >= v.baseline_cost);
    }

    #[test]
    fn attention_offloading_beneficial_for_long_generation() {
        // For n=128 at fp16 the KV stream dominates; offloading attention
        // should win even against the best quantized no-offload config...
        // unless KV quantization flips it — the exact tradeoff the
        // advisor exists to resolve. Assert only consistency: the verdict
        // matches the argmin of the two costs.
        let a = advisor();
        let v = a.attention_offloading(Policy::flexgen_default());
        assert_eq!(v.beneficial, v.candidate_cost < v.baseline_cost);
        assert!(v.baseline_cost.is_finite() && v.candidate_cost.is_finite());
    }

    #[test]
    fn task_costs_cover_all_kinds() {
        let a = advisor();
        let costs = a.task_costs(Policy::flexgen_default(), 4);
        assert_eq!(costs.len(), 7);
        let lw = costs.iter().find(|(n, _)| n == "load_weight").unwrap();
        assert!(lw.1 > 0.0);
    }

    #[test]
    fn lm_offload_kernels_flip_the_weight_quant_verdict() {
        // With optimised kernels and a higher GPU-resident share, weight
        // quantization becomes beneficial — the policy LM-Offload
        // actually deploys in Table 3.
        let mut a = advisor();
        a.params = QuantCostParams::lm_offload_kernels();
        let mut base = Policy::flexgen_default();
        base.attention = AttentionPlacement::Gpu;
        base.kv_dtype = DType::Int4;
        base.wg = 0.55;
        let v = a.weight_quantization(base);
        assert!(v.beneficial, "{v:?}");
    }
}
