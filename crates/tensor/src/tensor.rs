//! A dense, contiguous, row-major f32 tensor.
//!
//! Deliberately minimal: owned storage, no views or autograd. This is the
//! numeric substrate the real inference engine (`lm-engine`) runs on; the
//! large-model experiments never materialise tensors and use shape
//! arithmetic from `lm-models` instead.

use crate::shape::Shape;
use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A dense row-major f32 tensor with owned storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wrap an existing buffer; `data.len()` must equal the shape's numel.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Deterministic normal init (mean 0, given std) from a seed — used for
    /// synthetic weights so tests are reproducible.
    pub fn randn(shape: impl Into<Shape>, std: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Box-Muller via rand's StandardNormal-free path: use uniform pairs.
        // rand 0.8's Standard gives uniform [0,1); transform manually to
        // avoid the rand_distr dependency.
        let uniform = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = uniform.sample(&mut rng);
            let u2: f32 = uniform.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// Xavier/Glorot-style init for a `[fan_out, fan_in]` weight matrix.
    pub fn xavier(fan_out: usize, fan_in: usize, seed: u64) -> Self {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::randn([fan_out, fan_in], std, seed)
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    pub fn dim(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterpret with a new shape of identical numel (no data movement).
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {shape} changes element count"
        );
        self.shape = shape;
        self
    }

    /// Borrow row `r` of a rank-2 tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutably borrow row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Transpose a rank-2 tensor (materialised).
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2() requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec([n, m], out)
    }

    /// Concatenate rank-2 tensors along dim 0 (stacking rows).
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let cols = parts[0].dim(1);
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.rank(), 2, "concat_rows requires rank-2 tensors");
            assert_eq!(p.dim(1), cols, "column mismatch in concat_rows");
            rows += p.dim(0);
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec([rows, cols], data)
    }

    /// Maximum absolute difference against another tensor of equal shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Approximate equality within an absolute tolerance.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= atol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_len() {
        Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let a = Tensor::randn([1000], 1.0, 42);
        let b = Tensor::randn([1000], 1.0, 42);
        assert_eq!(a, b);
        let mean: f32 = a.data().iter().sum::<f32>() / 1000.0;
        let var: f32 = a.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::randn([3, 5], 1.0, 7);
        let tt = t.transpose2().transpose2();
        assert!(t.allclose(&tt, 0.0));
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_vec([1, 2], vec![1., 2.]);
        let b = Tensor::from_vec([2, 2], vec![3., 4., 5., 6.]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape().0, vec![3, 2]);
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dim(0), 3);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Tensor::zeros([4]);
        let mut b = Tensor::zeros([4]);
        b.data_mut()[2] = 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(!a.allclose(&b, 0.1));
        assert!(a.allclose(&b, 0.5));
    }
}
