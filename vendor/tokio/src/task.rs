//! Task handles for futures spawned onto the [`runtime`](crate::runtime).

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// The spawned task panicked before producing its output.
#[derive(Debug)]
pub struct JoinError {
    _priv: (),
}

impl JoinError {
    pub(crate) fn panicked() -> Self {
        JoinError { _priv: () }
    }

    /// This stand-in only constructs join errors from panics.
    pub fn is_panic(&self) -> bool {
        true
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked")
    }
}

impl std::error::Error for JoinError {}

pub(crate) struct JoinState<T> {
    inner: Mutex<(Option<Result<T, JoinError>>, Option<Waker>)>,
    cv: Condvar,
}

impl<T> JoinState<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JoinState {
            inner: Mutex::new((None, None)),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<T, JoinError>) {
        let mut g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.0 = Some(result);
        if let Some(w) = g.1.take() {
            w.wake();
        }
        self.cv.notify_all();
    }
}

/// An owned permission to join on a spawned task: a future resolving to
/// the task's output, `Err(JoinError)` if it panicked.
pub struct JoinHandle<T> {
    pub(crate) state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has produced its output (or panicked).
    pub fn is_finished(&self) -> bool {
        match self.state.inner.lock() {
            Ok(g) => g.0.is_some(),
            Err(p) => p.into_inner().0.is_some(),
        }
    }

    /// Park the calling thread until the task completes — a convenience
    /// the real tokio spells `Handle::block_on(handle)`.
    pub(crate) fn join_blocking(self) -> Result<T, JoinError> {
        let mut g = match self.state.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(r) = g.0.take() {
                return r;
            }
            g = match self.state.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut g = match self.state.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(r) = g.0.take() {
            return Poll::Ready(r);
        }
        g.1 = Some(cx.waker().clone());
        Poll::Pending
    }
}
