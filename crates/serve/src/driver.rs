//! The clock/transport split (DESIGN.md §16): the continuous-batching
//! state machine in [`scheduler`](crate::scheduler) is pure — arrivals,
//! fates, admission, SLO actuation and retirement are all functions of
//! its virtual clock — and everything *impure* (how time advances, where
//! tokens go) is behind [`ServeDriver`].
//!
//! Two drivers exist:
//!
//! - [`VirtualDriver`] — the identity driver: `pace` returns the
//!   modelled clock unchanged and `deliver` always succeeds, so the
//!   scheduler byte-reproduces the pre-split `serve_continuous` outcomes
//!   (the golden `results/serve.json` test holds it to that).
//! - `AsyncDriver` (private to [`session`](crate::session)) — the tokio
//!   front end: `pace` sleeps until scaled wall time catches the
//!   modelled clock and returns whichever is later (wall deadlines feed
//!   the same SLO actuators), `deliver` pushes into the request's
//!   bounded mpsc channel, and a dropped receiver or exhausted
//!   backpressure grace surfaces through [`Delivery`] as the scheduler's
//!   existing disconnect/cancellation vocabulary.

use crate::scheduler::TokenEvent;

/// What happened to one streamed token at the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The client got (or will get) the token.
    Delivered,
    /// The client is gone — its receiver dropped. The scheduler resolves
    /// the request as a [`CancelReason::ClientDisconnect`]
    /// (crate::CancelReason::ClientDisconnect) cancellation at the next
    /// boundary and reclaims its KV.
    Disconnected,
    /// The client's bounded channel stayed full past the configured
    /// grace: a consumer slower than generation. Treated like a
    /// disconnect (the alternative — blocking the whole block on one
    /// slow reader — would stall every other slot's stream).
    Backpressured,
}

/// The pluggable clock + transport the scheduler core is driven by.
///
/// Contract: `pace` must be monotone (never return less than its
/// argument) and the identity implementation must be exactly that —
/// identity — so the virtual-clock path stays bit-identical.
pub trait ServeDriver {
    /// The scheduler advanced its modelled clock to `clock_us` (virtual
    /// microseconds). Returns the clock the run should proceed at; a
    /// real-time driver sleeps here until wall time catches up and may
    /// return a later value (wall jitter), a virtual driver returns the
    /// input unchanged.
    fn pace(&mut self, clock_us: u64) -> u64 {
        clock_us
    }

    /// Deliver one generated token to the request's transport.
    fn deliver(&mut self, event: TokenEvent) -> Delivery;

    /// The request reached a terminal state (response, rejection, or
    /// cancellation); a streaming transport closes its channel here so
    /// the consumer observes end-of-stream.
    fn retire(&mut self, request_id: u64) {
        let _ = request_id;
    }
}

/// The identity driver: virtual clock, synchronous callback delivery.
/// [`serve_continuous_with`](crate::scheduler::serve_continuous_with)
/// and [`ServeSession::run_streaming`](crate::ServeSession::run_streaming)
/// are thin wrappers over this.
pub struct VirtualDriver<'a> {
    on_token: &'a mut dyn FnMut(TokenEvent),
}

impl<'a> VirtualDriver<'a> {
    pub fn new(on_token: &'a mut dyn FnMut(TokenEvent)) -> Self {
        VirtualDriver { on_token }
    }
}

impl ServeDriver for VirtualDriver<'_> {
    fn deliver(&mut self, event: TokenEvent) -> Delivery {
        (self.on_token)(event);
        Delivery::Delivered
    }
}

/// A driver that drops nothing and goes nowhere: the default for
/// non-streaming runs.
pub struct NullDriver;

impl ServeDriver for NullDriver {
    fn deliver(&mut self, _event: TokenEvent) -> Delivery {
        Delivery::Delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_driver_is_the_identity() {
        let mut seen = Vec::new();
        let mut cb = |e: TokenEvent| seen.push(e.token);
        let mut d = VirtualDriver::new(&mut cb);
        assert_eq!(d.pace(123), 123);
        assert_eq!(
            d.deliver(TokenEvent {
                request_id: 1,
                index: 0,
                token: 42,
                t_us: 5
            }),
            Delivery::Delivered
        );
        d.retire(1); // no-op
        assert_eq!(seen, vec![42]);
    }

    #[test]
    fn null_driver_always_delivers() {
        let mut d = NullDriver;
        assert_eq!(d.pace(7), 7);
        assert_eq!(
            d.deliver(TokenEvent {
                request_id: 0,
                index: 0,
                token: 1,
                t_us: 0
            }),
            Delivery::Delivered
        );
    }
}
