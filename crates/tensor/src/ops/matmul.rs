//! Matrix multiplication kernels.
//!
//! Cache-blocked inner loops with rayon parallelism over row blocks — the
//! idiomatic data-parallel decomposition (each output row block is an
//! independent task, so there is no sharing and no locks).

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Row-block size for the parallel split. Chosen so a block of C plus the
/// streamed panels of A and B fit comfortably in L2.
const ROW_BLOCK: usize = 32;

/// `C = A × B` for `A: [m, k]`, `B: [k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    out.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(block, chunk)| {
            let row0 = block * ROW_BLOCK;
            let rows = chunk.len() / n;
            for r in 0..rows {
                let a_row = &a_data[(row0 + r) * k..(row0 + r + 1) * k];
                let c_row = &mut chunk[r * n..(r + 1) * n];
                // ikj loop order: stream B rows, accumulate into C row.
                for (ki, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[ki * n..(ki + 1) * n];
                    for (c, &bv) in c_row.iter_mut().zip(b_row) {
                        *c += av * bv;
                    }
                }
            }
        });

    Tensor::from_vec([m, n], out)
}

/// `C = A × Bᵀ` for `A: [m, k]`, `B: [n, k]` — the natural layout for
/// linear layers stored as `[out_features, in_features]` and for QKᵀ
/// attention scores where K rows are cache entries.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_transb lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_transb rhs must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    out.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(block, chunk)| {
            let row0 = block * ROW_BLOCK;
            let rows = chunk.len() / n;
            for r in 0..rows {
                let a_row = &a_data[(row0 + r) * k..(row0 + r + 1) * k];
                let c_row = &mut chunk[r * n..(r + 1) * n];
                for (j, c) in c_row.iter_mut().enumerate() {
                    let b_row = &b_data[j * k..(j + 1) * k];
                    *c = dot(a_row, b_row);
                }
            }
        });

    Tensor::from_vec([m, n], out)
}

/// Dot product with 4-way unrolling (lets the autovectoriser keep four
/// independent accumulator lanes).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        acc[0] += ai[0] * bi[0];
        acc[1] += ai[1] * bi[1];
        acc[2] += ai[2] * bi[2];
        acc[3] += ai[3] * bi[3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Reference (naive, sequential) matmul for differential testing.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    assert_eq!(k, b.dim(0));
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += a.data()[i * k + p] * b.data()[p * n + j];
            }
            out[i * n + j] = s;
        }
    }
    Tensor::from_vec([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_naive_small() {
        let a = Tensor::randn([7, 5], 1.0, 1);
        let b = Tensor::randn([5, 9], 1.0, 2);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn matches_naive_blocked_boundary() {
        // m larger than ROW_BLOCK and not a multiple of it.
        let a = Tensor::randn([ROW_BLOCK * 2 + 5, 17], 1.0, 3);
        let b = Tensor::randn([17, 11], 1.0, 4);
        assert!(matmul(&a, &b).allclose(&matmul_naive(&a, &b), 1e-3));
    }

    #[test]
    fn transb_agrees_with_explicit_transpose() {
        let a = Tensor::randn([6, 8], 1.0, 5);
        let b = Tensor::randn([10, 8], 1.0, 6);
        let via_t = matmul(&a, &b.transpose2());
        let direct = matmul_transb(&a, &b);
        assert!(via_t.allclose(&direct, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::randn([4, 4], 1.0, 7);
        let mut eye = Tensor::zeros([4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert!(matmul(&a, &eye).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }

    proptest! {
        #[test]
        fn prop_parallel_equals_naive(
            m in 1usize..40,
            k in 1usize..20,
            n in 1usize..20,
            seed in 0u64..1000,
        ) {
            let a = Tensor::randn([m, k], 1.0, seed);
            let b = Tensor::randn([k, n], 1.0, seed.wrapping_add(1));
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            prop_assert!(fast.allclose(&slow, 1e-3));
        }

        #[test]
        fn prop_dot_is_commutative(len in 0usize..200, seed in 0u64..1000) {
            let a = Tensor::randn([len.max(1)], 1.0, seed);
            let b = Tensor::randn([len.max(1)], 1.0, seed.wrapping_add(9));
            let ab = dot(a.data(), b.data());
            let ba = dot(b.data(), a.data());
            prop_assert!((ab - ba).abs() <= 1e-4 * (1.0 + ab.abs()));
        }
    }
}
