//! Hardware specification structs.
//!
//! These mirror the notation of Table 2 in the paper: `cpu_flops`,
//! `cpu_freq`, `cpu_mem_bdw`, `gpu_flops`, `gpu_freq`, `gpu_mem_bdw`, plus
//! the capacities and topology information the simulator needs.

use serde::{Deserialize, Serialize};

/// A CPU socket complex (possibly multiple sockets presented as one NUMA'd
/// compute resource, matching how the paper treats its dual Xeon 6330).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. "2x Intel Xeon Gold 6330".
    pub name: String,
    /// Number of sockets; cross-socket traffic pays the NUMA penalty.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (SMT).
    pub threads_per_core: u32,
    /// Nominal core frequency in Hz (`cpu_freq` in the paper's models).
    pub freq_hz: f64,
    /// Peak aggregate FLOP/s (`cpu_flops`).
    pub flops: f64,
    /// Peak aggregate memory bandwidth in bytes/s (`cpu_mem_bdw`).
    pub mem_bw: f64,
    /// DRAM capacity in bytes.
    pub mem_capacity: u64,
    /// Last-level cache capacity per socket in bytes (drives `lm-cachesim`).
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: u32,
    /// Cache line size in bytes.
    pub line_size: u32,
}

impl CpuSpec {
    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads across sockets (what PyTorch's default
    /// inter-op parallelism of 112 corresponds to on the paper's machine).
    pub fn total_threads(&self) -> u32 {
        self.total_cores() * self.threads_per_core
    }

    /// Total LLC capacity across sockets.
    pub fn total_llc_bytes(&self) -> u64 {
        self.llc_bytes * self.sockets as u64
    }
}

/// A single GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. "NVIDIA A100 40GB".
    pub name: String,
    /// SM clock in Hz (`gpu_freq`).
    pub freq_hz: f64,
    /// Peak matrix-multiply FLOP/s (`gpu_flops`; tensor-core fp16 path).
    pub flops: f64,
    /// Peak elementwise/vector FLOP/s (used for the normalization phases of
    /// (de)quantization, which cannot use tensor cores).
    pub elementwise_flops: f64,
    /// HBM bandwidth in bytes/s (`gpu_mem_bdw`).
    pub mem_bw: f64,
    /// Global memory capacity in bytes.
    pub mem_capacity: u64,
}

/// A host↔device or device↔device interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Marketing name, e.g. "PCIe 4.0 x16".
    pub name: String,
    /// Host-to-device bandwidth in bytes/s (one direction).
    pub h2d_bw: f64,
    /// Device-to-host bandwidth in bytes/s (one direction).
    pub d2h_bw: f64,
    /// Per-transfer latency in seconds (DMA setup + driver overhead).
    pub latency: f64,
}

/// Calibration factors mapping peak hardware numbers to the sustained rates
/// a PyTorch-level offloading runtime achieves. These are the only tunable
/// constants in the reproduction; their defaults are chosen so the
/// motivation-study shapes (Fig. 3–5) match the paper and are documented in
/// DESIGN.md §5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Fraction of peak link bandwidth achieved by tensor transfers
    /// (unpinned host memory + framework overhead; the paper's observed
    /// throughputs imply ~0.25 of the PCIe peak).
    pub link: f64,
    /// Fraction of peak GPU matmul FLOP/s sustained by attention/MLP.
    pub gpu_compute: f64,
    /// Fraction of peak CPU FLOP/s sustained by offloaded attention.
    pub cpu_compute: f64,
    /// Fraction of peak GPU memory bandwidth sustained by bulk copies.
    pub gpu_membw: f64,
    /// Fraction of peak CPU memory bandwidth sustained by bulk copies.
    pub cpu_membw: f64,
    /// Fraction of peak throughput sustained by the group-wise
    /// (de)quantization kernels (torch-level kernels are launch-bound and
    /// far from peak; Fig. 4's large quant/dequant bars imply a small
    /// factor).
    pub quant_kernel: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency {
            link: 0.25,
            gpu_compute: 0.45,
            cpu_compute: 0.30,
            gpu_membw: 0.70,
            cpu_membw: 0.60,
            quant_kernel: 0.05,
        }
    }
}

/// A full evaluation platform: one CPU complex, one or more GPUs, the
/// CPU↔GPU link, and (for multi-GPU platforms) the GPU↔GPU link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    pub name: String,
    pub cpu: CpuSpec,
    /// All GPUs are identical on the paper's platforms.
    pub gpu: GpuSpec,
    /// Number of GPUs attached.
    pub num_gpus: u32,
    /// CPU↔GPU link (each GPU has its own link of this spec).
    pub link: LinkSpec,
    /// GPU↔GPU link for pipeline parallelism, if any.
    pub gpu_link: Option<LinkSpec>,
    /// Calibration factors.
    pub eff: Efficiency,
}

impl Platform {
    /// Sustained host-to-device bandwidth after calibration.
    pub fn h2d_bw(&self) -> f64 {
        self.link.h2d_bw * self.eff.link
    }

    /// Sustained device-to-host bandwidth after calibration.
    pub fn d2h_bw(&self) -> f64 {
        self.link.d2h_bw * self.eff.link
    }

    /// Sustained GPU matmul FLOP/s.
    pub fn gpu_flops(&self) -> f64 {
        self.gpu.flops * self.eff.gpu_compute
    }

    /// Sustained CPU FLOP/s when `threads` of `total` hardware threads are
    /// granted to a kernel, before the contention model in
    /// `lm-parallelism::scaling` (which callers should prefer).
    pub fn cpu_flops(&self) -> f64 {
        self.cpu.flops * self.eff.cpu_compute
    }

    /// Sustained GPU memory bandwidth.
    pub fn gpu_membw(&self) -> f64 {
        self.gpu.mem_bw * self.eff.gpu_membw
    }

    /// Sustained CPU memory bandwidth.
    pub fn cpu_membw(&self) -> f64 {
        self.cpu.mem_bw * self.eff.cpu_membw
    }

    /// Time to move `bytes` from host to one device, including latency.
    pub fn h2d_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.link.latency + bytes as f64 / self.h2d_bw()
        }
    }

    /// Time to move `bytes` from one device to host, including latency.
    pub fn d2h_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.link.latency + bytes as f64 / self.d2h_bw()
        }
    }

    /// Time to move `bytes` between two GPUs, if a GPU link exists.
    pub fn d2d_time(&self, bytes: u64) -> Option<f64> {
        let link = self.gpu_link.as_ref()?;
        if bytes == 0 {
            return Some(0.0);
        }
        Some(link.latency + bytes as f64 / (link.h2d_bw * self.eff.link.max(0.5)))
    }
}

#[cfg(test)]
mod tests {
    
    use crate::presets;

    #[test]
    fn cpu_thread_accounting() {
        let p = presets::single_gpu_a100();
        // 2 sockets x 28 cores = 56 cores, 112 hardware threads — exactly
        // the PyTorch defaults quoted in §4.1 of the paper.
        assert_eq!(p.cpu.total_cores(), 56);
        assert_eq!(p.cpu.total_threads(), 112);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let p = presets::single_gpu_a100();
        assert_eq!(p.h2d_time(0), 0.0);
        let small = p.h2d_time(1 << 20);
        let big = p.h2d_time(1 << 30);
        assert!(big > small);
        assert!(small > 0.0);
    }

    #[test]
    fn sustained_below_peak() {
        let p = presets::single_gpu_a100();
        assert!(p.h2d_bw() < p.link.h2d_bw);
        assert!(p.gpu_flops() < p.gpu.flops);
        assert!(p.cpu_flops() < p.cpu.flops);
    }

    #[test]
    fn d2d_requires_gpu_link() {
        let single = presets::single_gpu_a100();
        assert!(single.d2d_time(1024).is_none());
        let multi = presets::multi_gpu_v100(4);
        assert!(multi.d2d_time(1024).unwrap() > 0.0);
        assert_eq!(multi.d2d_time(0), Some(0.0));
    }
}
