//! Benchmarks of the decision machinery: policy grid search (FlexGen's
//! LP-equivalent and LM-Offload's quantization-aware extension),
//! Algorithm 3's parallelism search, and Kahn analysis — plus the
//! policy-granularity ablation called out in DESIGN.md §5.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lm_baselines::flexgen::{flexgen_evaluator, flexgen_search};
use lm_baselines::search::{grid_search, SearchSpace};
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{derive_plan, lm_offload_evaluator, QuantCostParams, ThreadFactors};
use lm_parallelism::{analyze, attention_block_graph, attention_graph};
use lm_sim::Policy;

fn bench_policy_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_search");
    g.sample_size(10);
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    g.bench_function("flexgen_full", |b| {
        b.iter(|| flexgen_search(&platform, &model, 64, 32))
    });
    let w = Workload::new(64, 32, 64, 10);
    g.bench_function("flexgen_grid_one_shape", |b| {
        b.iter(|| {
            grid_search(&SearchSpace::flexgen(), |p| {
                flexgen_evaluator(&platform, &model, &w, p)
            })
        })
    });
    g.bench_function("lm_offload_grid_one_shape", |b| {
        b.iter(|| {
            grid_search(&SearchSpace::lm_offload(), |p| {
                lm_offload_evaluator(
                    &platform,
                    &model,
                    &w,
                    p,
                    QuantCostParams::lm_offload_kernels(),
                    ThreadFactors::Controlled,
                )
            })
        })
    });
    g.finish();
}

/// DESIGN.md §5 ablation: grid resolution. A coarse 5%-step grid must find
/// (nearly) the same optimum as a fine 1% grid at a fraction of the cost —
/// evidence that the exhaustive grid is an adequate LP stand-in.
fn bench_policy_granularity_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_granularity");
    g.sample_size(10);
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::new(64, 32, 64, 10);
    for steps in [5usize, 20, 100] {
        let mut space = SearchSpace::lm_offload();
        space.wg_steps = steps;
        g.bench_with_input(BenchmarkId::from_parameter(steps), &space, |b, space| {
            b.iter(|| {
                grid_search(space, |p| {
                    lm_offload_evaluator(
                        &platform,
                        &model,
                        &w,
                        p,
                        QuantCostParams::lm_offload_kernels(),
                        ThreadFactors::Controlled,
                    )
                })
            })
        });
    }
    g.finish();

    // Report the quality side of the ablation once (not timed).
    let score_at = |steps: usize| {
        let mut space = SearchSpace::lm_offload();
        space.wg_steps = steps;
        grid_search(&space, |p| {
            lm_offload_evaluator(
                &platform,
                &model,
                &w,
                p,
                QuantCostParams::lm_offload_kernels(),
                ThreadFactors::Controlled,
            )
        })
        .map(|(_, s)| s)
        .unwrap_or(0.0)
    };
    let coarse = score_at(5);
    let fine = score_at(100);
    eprintln!(
        "[ablation] policy granularity: 5-step grid reaches {:.1}% of the 100-step optimum",
        coarse / fine * 100.0
    );
}

fn bench_parallelism_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallelism");
    g.sample_size(10);
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::parallelism_study();
    g.bench_function("algorithm3_full", |b| {
        b.iter(|| derive_plan(&platform, &model, &w, &Policy::flexgen_default()))
    });
    let graph = attention_graph(640, 68, 7168, 7);
    g.bench_function("kahn_analyze_per_batch", |b| b.iter(|| analyze(&graph)));
    let block = attention_block_graph(64, 10, 68, 7168, 7);
    g.bench_function("kahn_analyze_block", |b| b.iter(|| analyze(&block)));
    g.finish();
}

criterion_group!(
    benches,
    bench_policy_search,
    bench_policy_granularity_ablation,
    bench_parallelism_search
);
criterion_main!(benches);
