//! The deterministic continuous-batching scheduler, plus the two
//! baselines it is measured against (sequential one-call-per-request and
//! naive static batching).
//!
//! Determinism contract: the scheduler runs on a virtual clock (u64
//! microseconds) advanced only by the backend's modelled task costs.
//! Admission order is a total order — `(priority desc, arrival asc, id
//! asc)` — and every block boundary processes arrivals, retirements and
//! admissions in a fixed sequence, so a run is a pure function of
//! `(requests, backend, config)`: byte-identical outcomes across runs
//! and machines.
//!
//! Slot lifecycle: a request is admitted at a block boundary when a slot
//! is free and its KV lease (worst case for its padded context) is
//! granted by the serve pool; transient grant failures retry under the
//! configured `lm-fault` policy, then defer to the next boundary while
//! other sequences still hold leases. Each decode step delivers one
//! token to every active slot (streamed through the `on_token`
//! callback); a finished sequence drops its lease at the boundary, and
//! the freed bytes admit the next queued request.

use crate::admission::{ServeConfig, ServeError, ServePlan};
use crate::backend::ServeBackend;
use crate::request::{micros, ArrivalQueue, RejectReason, Rejection, Request, Response};
use lm_engine::{validate_request, EngineError, Lease, MemPool};
use serde::{Deserialize, Serialize};

/// One streamed token, delivered as it is generated (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    pub request_id: u64,
    /// 0-based index of this token within the request's generation.
    pub index: usize,
    pub token: u32,
    pub t_us: u64,
}

/// What one serving run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeOutcome {
    pub responses: Vec<Response>,
    pub rejections: Vec<Rejection>,
    /// Virtual end-to-end duration, seconds.
    pub sim_seconds: f64,
    /// Real (non-padding) tokens generated.
    pub generated_tokens: u64,
    /// Padding tokens charged (prompt padding inside admitted groups;
    /// for the static baseline also generation padding to the batch max).
    pub padding_tokens: u64,
    /// High-water mark of the serve KV pool, bytes (0 for baselines that
    /// do not lease).
    pub kv_peak_bytes: usize,
}

impl ServeOutcome {
    /// Real tokens per virtual second.
    pub fn tokens_per_s(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.generated_tokens as f64 / self.sim_seconds
        } else {
            0.0
        }
    }
}

/// An admitted sequence holding a slot.
struct Slot {
    id: u64,
    tokens: Vec<u32>,
    emitted: usize,
    /// Current sequence length (padded prompt + emitted tokens).
    context: u64,
    arrival_us: u64,
    first_token_us: Option<u64>,
    _lease: Lease,
}

/// Total admission order: priority desc, then arrival asc, then id asc.
fn admission_order(ready: &mut [Request]) {
    ready.sort_by(|a, b| {
        b.priority
            .cmp(&a.priority)
            .then(a.arrival_us.cmp(&b.arrival_us))
            .then(a.id.cmp(&b.id))
    });
}

/// Run the continuous-batching scheduler over `requests`; the plan is
/// derived (and `LMA25x`-linted) by [`crate::plan_admission`] first.
pub fn serve_continuous(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> Result<(ServePlan, ServeOutcome), ServeError> {
    serve_continuous_with(backend, cfg, requests, &mut |_| {})
}

/// [`serve_continuous`] with per-token streaming delivery.
pub fn serve_continuous_with(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
    on_token: &mut dyn FnMut(TokenEvent),
) -> Result<(ServePlan, ServeOutcome), ServeError> {
    let plan = crate::admission::plan_admission(backend, cfg)?;
    let tracer = &cfg.tracer;
    let pool = MemPool::new("serve.kv", plan.kv_pool_bytes as usize);
    pool.attach_fault(cfg.fault.clone());

    let total = requests.len();
    let mut queue = ArrivalQueue::new(requests);
    let mut ready: Vec<Request> = Vec::new();
    let mut active: Vec<Slot> = Vec::new();
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    let mut padding = 0u64;

    loop {
        ready.extend(queue.pop_arrived(clock_us));
        if active.is_empty() && ready.is_empty() {
            match queue.next_arrival_us() {
                Some(t) => {
                    clock_us = t;
                    continue;
                }
                None => break,
            }
        }

        // ---- block boundary: reject expired, admit into free slots ----
        let mut expired = Vec::new();
        ready.retain(|r| match r.deadline_us {
            Some(d) if d < clock_us => {
                expired.push(Rejection {
                    id: r.id,
                    reason: RejectReason::DeadlineExpired {
                        deadline_us: d,
                        now_us: clock_us,
                    },
                });
                false
            }
            _ => true,
        });
        for rej in expired {
            tracer.counter_add("serve.rejected", 1);
            tracer.instant("serve.deadline_expired", "serve");
            rejections.push(rej);
        }

        admission_order(&mut ready);
        let free = plan.slots.saturating_sub(active.len());
        let mut candidates: Vec<(Request, Vec<u32>)> = Vec::new();
        while candidates.len() < free && !ready.is_empty() {
            let req = ready.remove(0);
            if let Err(EngineError::InvalidRequest { reason }) = validate_request(
                backend.model(),
                std::slice::from_ref(&req.prompt),
                req.gen_len,
                1,
            ) {
                tracer.counter_add("serve.rejected", 1);
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::Invalid(reason),
                });
                continue;
            }
            match backend.materialize(&req) {
                Ok(tokens) => candidates.push((req, tokens)),
                Err(e) => {
                    tracer.counter_add("serve.rejected", 1);
                    rejections.push(Rejection {
                        id: req.id,
                        reason: RejectReason::AdmissionFailed(e.to_string()),
                    });
                }
            }
        }

        // The group pads to its longest prompt; leases cover the padded
        // worst case so a slot never outgrows its reservation.
        let pad_len = candidates
            .iter()
            .map(|(r, _)| r.prompt.len())
            .max()
            .unwrap_or(0);
        let mut admitted: Vec<Slot> = Vec::new();
        for (req, tokens) in candidates {
            let bytes = backend.kv_bytes_at(pad_len + req.gen_len);
            let grant = cfg.retry.run(
                |_| pool.alloc(bytes),
                |_, _| {
                    cfg.fault.note_retry();
                    tracer.counter_add("serve.admission_retries", 1);
                },
            );
            match grant {
                Ok(lease) => {
                    padding += (pad_len - req.prompt.len()) as u64;
                    tracer.counter_add("serve.padding_tokens", (pad_len - req.prompt.len()) as u64);
                    tracer.counter_add("serve.admitted", 1);
                    admitted.push(Slot {
                        id: req.id,
                        tokens,
                        emitted: 0,
                        context: pad_len as u64,
                        arrival_us: req.arrival_us,
                        first_token_us: None,
                        _lease: lease,
                    });
                }
                Err(err) => {
                    if bytes > pool.capacity() {
                        // Unservable under this plan, ever.
                        tracer.counter_add("serve.rejected", 1);
                        rejections.push(Rejection {
                            id: req.id,
                            reason: RejectReason::PoolOverCommit {
                                bytes,
                                capacity: pool.capacity(),
                            },
                        });
                    } else if active.is_empty() && admitted.is_empty() {
                        // Nothing holds a lease, so waiting frees no
                        // bytes: the failure is not transient.
                        tracer.counter_add("serve.rejected", 1);
                        rejections.push(Rejection {
                            id: req.id,
                            reason: RejectReason::AdmissionFailed(err.to_string()),
                        });
                    } else {
                        // Defer to the next boundary; leases retire there.
                        tracer.counter_add("serve.deferred", 1);
                        ready.push(req);
                    }
                }
            }
        }

        if !admitted.is_empty() {
            let dt = backend.prefill_seconds(pad_len, admitted.len());
            clock_us += micros(dt);
            tracer.histogram_record("serve.prefill_s", dt);
            active.extend(admitted);
        }

        tracer.gauge_set("serve.queue_depth", (ready.len() + queue.len()) as f64);
        tracer.gauge_set(
            "serve.slot_occupancy",
            active.len() as f64 / plan.slots.max(1) as f64,
        );

        if active.is_empty() {
            // Everything at this boundary was rejected; wait for traffic.
            continue;
        }

        // ---- one decode step over the whole block ---------------------
        let contexts: Vec<u64> = active.iter().map(|s| s.context).collect();
        let dt = backend.decode_step_seconds(&contexts);
        clock_us += micros(dt);
        tracer.histogram_record("serve.step_s", dt);

        for slot in &mut active {
            let token = slot.tokens[slot.emitted];
            on_token(TokenEvent {
                request_id: slot.id,
                index: slot.emitted,
                token,
                t_us: clock_us,
            });
            slot.emitted += 1;
            slot.context += 1;
            generated += 1;
            tracer.counter_add("serve.tokens", 1);
            if slot.first_token_us.is_none() {
                slot.first_token_us = Some(clock_us);
                tracer.histogram_record(
                    "serve.ttft_s",
                    (clock_us.saturating_sub(slot.arrival_us)) as f64 / 1e6,
                );
            }
        }

        // ---- retire finished sequences (leases drop here) -------------
        let mut still = Vec::with_capacity(active.len());
        for slot in active.drain(..) {
            if slot.emitted >= slot.tokens.len() {
                tracer.counter_add("serve.completed", 1);
                tracer.histogram_record(
                    "serve.latency_s",
                    (clock_us.saturating_sub(slot.arrival_us)) as f64 / 1e6,
                );
                responses.push(Response {
                    id: slot.id,
                    tokens: slot.tokens,
                    arrival_us: slot.arrival_us,
                    first_token_us: slot.first_token_us.unwrap_or(clock_us),
                    finish_us: clock_us,
                });
            } else {
                still.push(slot);
            }
        }
        active = still;
    }

    debug_assert_eq!(responses.len() + rejections.len(), total);
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    Ok((
        plan,
        ServeOutcome {
            responses,
            rejections,
            sim_seconds: clock_us as f64 / 1e6,
            generated_tokens: generated,
            padding_tokens: padding,
            kv_peak_bytes: pool.peak(),
        },
    ))
}

/// Baseline 1: one call per request, in arrival order — each request
/// pays its own full weight stream (no amortisation at all).
pub fn serve_sequential(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    let tracer = &cfg.tracer;
    let mut queue: Vec<Request> = requests;
    queue.sort_by_key(|r| (r.arrival_us, r.id));
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    for req in queue {
        clock_us = clock_us.max(req.arrival_us);
        if let Err(EngineError::InvalidRequest { reason }) = validate_request(
            backend.model(),
            std::slice::from_ref(&req.prompt),
            req.gen_len,
            1,
        ) {
            rejections.push(Rejection {
                id: req.id,
                reason: RejectReason::Invalid(reason),
            });
            continue;
        }
        let tokens = match backend.materialize(&req) {
            Ok(t) => t,
            Err(e) => {
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::AdmissionFailed(e.to_string()),
                });
                continue;
            }
        };
        clock_us += micros(backend.prefill_seconds(req.prompt.len(), 1));
        let mut first_token_us = None;
        for i in 0..tokens.len() {
            clock_us += micros(backend.decode_step_seconds(&[(req.prompt.len() + i + 1) as u64]));
            if first_token_us.is_none() {
                first_token_us = Some(clock_us);
                tracer.histogram_record(
                    "serve.ttft_s",
                    (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
                );
            }
            generated += 1;
        }
        tracer.histogram_record(
            "serve.latency_s",
            (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
        );
        responses.push(Response {
            id: req.id,
            first_token_us: first_token_us.unwrap_or(clock_us),
            finish_us: clock_us,
            arrival_us: req.arrival_us,
            tokens,
        });
    }
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    Ok(ServeOutcome {
        responses,
        rejections,
        sim_seconds: clock_us as f64 / 1e6,
        generated_tokens: generated,
        padding_tokens: 0,
        kv_peak_bytes: 0,
    })
}

/// Baseline 2: naive static batching — fixed groups of `batch` in
/// arrival order; a group waits for its last member to arrive, pads
/// prompts *and* generation lengths to the group max, and releases every
/// response only when the whole group finishes.
pub fn serve_static(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    batch: usize,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    assert!(batch >= 1, "batch must be positive");
    let tracer = &cfg.tracer;
    let mut queue: Vec<Request> = requests;
    queue.sort_by_key(|r| (r.arrival_us, r.id));
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    let mut padding = 0u64;
    for chunk in queue.chunks(batch) {
        // The batch forms only when its last member has arrived.
        let formed = chunk.iter().map(|r| r.arrival_us).max().unwrap_or(0);
        clock_us = clock_us.max(formed);
        let mut members: Vec<(&Request, Vec<u32>)> = Vec::new();
        for req in chunk {
            if let Err(EngineError::InvalidRequest { reason }) = validate_request(
                backend.model(),
                std::slice::from_ref(&req.prompt),
                req.gen_len,
                1,
            ) {
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::Invalid(reason),
                });
                continue;
            }
            match backend.materialize(req) {
                Ok(t) => members.push((req, t)),
                Err(e) => rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::AdmissionFailed(e.to_string()),
                }),
            }
        }
        if members.is_empty() {
            continue;
        }
        let pad_len = members.iter().map(|(r, _)| r.prompt.len()).max().unwrap_or(1);
        let max_gen = members.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        for (r, t) in &members {
            padding += (pad_len - r.prompt.len()) as u64 + (max_gen - t.len()) as u64;
        }
        clock_us += micros(backend.prefill_seconds(pad_len, members.len()));
        let mut firsts: Vec<Option<u64>> = vec![None; members.len()];
        for step in 0..max_gen {
            // Every slot pays every step at the padded context — the
            // naive part: finished sequences idle inside the batch.
            let contexts: Vec<u64> = vec![(pad_len + step + 1) as u64; members.len()];
            clock_us += micros(backend.decode_step_seconds(&contexts));
            for (m, (_, tokens)) in members.iter().enumerate() {
                if step < tokens.len() {
                    generated += 1;
                    if firsts[m].is_none() {
                        firsts[m] = Some(clock_us);
                    }
                }
            }
        }
        // Naive release: the whole batch returns together.
        for (m, (req, tokens)) in members.into_iter().enumerate() {
            let first = firsts[m].unwrap_or(clock_us);
            tracer.histogram_record(
                "serve.ttft_s",
                (first.saturating_sub(req.arrival_us)) as f64 / 1e6,
            );
            tracer.histogram_record(
                "serve.latency_s",
                (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
            );
            responses.push(Response {
                id: req.id,
                tokens,
                arrival_us: req.arrival_us,
                first_token_us: first,
                finish_us: clock_us,
            });
        }
    }
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    Ok(ServeOutcome {
        responses,
        rejections,
        sim_seconds: clock_us as f64 / 1e6,
        generated_tokens: generated,
        padding_tokens: padding,
        kv_peak_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::request::synth_traffic;

    fn traffic(n: usize) -> (AnalyticBackend, Vec<Request>) {
        let b = AnalyticBackend::opt_30b();
        let reqs = synth_traffic(7, 4.0, n, b.model());
        (b, reqs)
    }

    #[test]
    fn every_request_is_answered_or_rejected() {
        let (b, reqs) = traffic(12);
        let n = reqs.len();
        let (plan, out) = serve_continuous(&b, &ServeConfig::default(), reqs).unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), n);
        assert!(plan.slots >= 1);
        assert!(out.generated_tokens > 0);
        assert!(out.kv_peak_bytes > 0 && out.kv_peak_bytes <= plan.kv_pool_bytes as usize);
        for r in &out.responses {
            assert!(r.first_token_us >= r.arrival_us);
            assert!(r.finish_us >= r.first_token_us);
            assert!(!r.tokens.is_empty());
        }
    }

    #[test]
    fn continuous_run_is_deterministic() {
        let (b, reqs) = traffic(12);
        let (_, a) = serve_continuous(&b, &ServeConfig::default(), reqs.clone()).unwrap();
        let (_, c) = serve_continuous(&b, &ServeConfig::default(), reqs).unwrap();
        assert_eq!(a.responses, c.responses);
        assert_eq!(a.rejections, c.rejections);
        assert_eq!(a.sim_seconds.to_bits(), c.sim_seconds.to_bits());
    }

    #[test]
    fn continuous_beats_sequential_and_static() {
        let (b, reqs) = traffic(24);
        let cfg = ServeConfig::default();
        let (plan, cont) = serve_continuous(&b, &cfg, reqs.clone()).unwrap();
        let seq = serve_sequential(&b, &cfg, reqs.clone()).unwrap();
        let stat = serve_static(&b, &cfg, plan.slots, reqs).unwrap();
        assert!(
            cont.tokens_per_s() >= 1.3 * seq.tokens_per_s(),
            "continuous {} vs sequential {}",
            cont.tokens_per_s(),
            seq.tokens_per_s()
        );
        assert!(
            cont.tokens_per_s() > stat.tokens_per_s(),
            "continuous {} vs static {}",
            cont.tokens_per_s(),
            stat.tokens_per_s()
        );
    }

    #[test]
    fn streaming_delivers_every_token_in_order() {
        let (b, reqs) = traffic(8);
        let mut events: Vec<TokenEvent> = Vec::new();
        let (_, out) =
            serve_continuous_with(&b, &ServeConfig::default(), reqs, &mut |e| events.push(e))
                .unwrap();
        assert_eq!(events.len() as u64, out.generated_tokens);
        let mut t = 0;
        for e in &events {
            assert!(e.t_us >= t, "token times must be monotone");
            t = e.t_us;
        }
        for r in &out.responses {
            let streamed: Vec<u32> = events
                .iter()
                .filter(|e| e.request_id == r.id)
                .map(|e| e.token)
                .collect();
            assert_eq!(streamed, r.tokens, "stream must equal the response");
        }
    }

    #[test]
    fn malformed_and_expired_requests_are_typed_rejections() {
        let b = AnalyticBackend::opt_30b();
        let ok = Request::new(0, vec![1, 2, 3], 4);
        let empty = Request::new(1, vec![], 4);
        let too_long = Request::new(2, vec![1; 4000], 4000);
        // Arrives while the first block is mid-decode (OPT-30B steps take
        // virtual seconds), with a deadline already behind the clock by
        // the time the next boundary sweeps the queue.
        let expired = Request::new(3, vec![1, 2], 4)
            .with_arrival_us(1_000)
            .with_deadline_us(500);
        let late = Request::new(4, vec![1, 2], 4).with_arrival_us(5_000_000);
        let (_, out) = serve_continuous(
            &b,
            &ServeConfig::default(),
            vec![ok, empty, too_long, expired, late],
        )
        .unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), 5);
        let reason = |id: u64| {
            out.rejections
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.reason.clone())
        };
        assert!(matches!(reason(1), Some(RejectReason::Invalid(_))));
        assert!(matches!(reason(2), Some(RejectReason::Invalid(_))));
        // Request 3's deadline passes while the first block decodes.
        assert!(matches!(
            reason(3),
            Some(RejectReason::DeadlineExpired { .. })
        ));
        assert!(out.responses.iter().any(|r| r.id == 0));
        assert!(out.responses.iter().any(|r| r.id == 4));
    }

    #[test]
    fn priorities_jump_the_queue() {
        let b = AnalyticBackend::opt_30b();
        // One slot, both requests present at t=0: the high-priority one
        // must be served first despite the larger id.
        let lo = Request::new(0, vec![1, 2], 4).with_priority(0);
        let hi = Request::new(1, vec![3, 4], 4).with_priority(2);
        let cfg = ServeConfig {
            max_slots: 1,
            ..ServeConfig::default()
        };
        let (_, out) = serve_continuous(&b, &cfg, vec![lo, hi]).unwrap();
        let finish = |id: u64| {
            out.responses
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.finish_us)
                .unwrap_or(u64::MAX)
        };
        assert!(finish(1) < finish(0), "priority 2 must finish first");
    }

    #[test]
    fn fault_injected_pool_pressure_is_retried() {
        use lm_fault::{FaultConfig, FaultInjector, RetryPolicy};
        let b = AnalyticBackend::opt_30b();
        let fault = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 0.4,
            pool_pressure_bytes: u64::MAX / 2, // any spike fails the alloc
            ..FaultConfig::quiescent(5)
        });
        let cfg = ServeConfig {
            fault: fault.clone(),
            retry: RetryPolicy::fast_test(),
            ..ServeConfig::default()
        };
        let reqs = synth_traffic(3, 8.0, 10, b.model());
        let n = reqs.len();
        let (_, out) = serve_continuous(&b, &cfg, reqs).unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), n);
        // With p=0.4 per attempt and 5 attempts, some admission must have
        // needed a retry (probability of zero retries over 10 admissions
        // is (0.6)^10 ≈ 0.6% — and the stream is seed-deterministic).
        assert!(
            fault.stats().retries > 0,
            "expected admission retries under pool pressure"
        );
        assert!(!out.responses.is_empty());
    }
}
