//! One module per table/figure of the paper's evaluation — the
//! per-experiment index of DESIGN.md §4.

pub mod analyze;
pub mod async_rt;
pub mod chaos;
pub mod faults;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
pub mod serve;
pub mod slo;
pub mod summary;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod trace;
pub mod verify;
