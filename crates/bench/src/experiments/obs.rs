//! `repro obs` — the serve-path observability gate (DESIGN.md §13):
//! one default continuous-batching run is audited end to end through
//! every observability surface this repo ships, and the experiment
//! exits non-zero unless all four verdicts hold:
//!
//! 1. **Drift** — the scheduler's own `ServeObs` record is audited
//!    against the `TtftModel`/`plan_admission` predictions; every
//!    metric's obs/pred ratio must land within its documented tolerance
//!    at the default seed;
//! 2. **Exposition** — the run's metrics registry renders to
//!    OpenMetrics text, parses back, and re-renders byte-identically;
//! 3. **Flight recorder** — an injected overload (floor-level TTFT
//!    objective on a starved two-slot config) must freeze a post-mortem
//!    dump whose JSON round-trips losslessly;
//! 4. **Lints** — the audited config passes `lm-analyze`'s `LMA27x`
//!    observability lints clean.
//!
//! `results/obs.json` carries all the evidence; the Perfetto serve
//! timeline of the audited run goes to `results/serve_timeline.json`.

use lm_serve::{
    obs_probe, plan_admission, serve_timeline, synth_traffic, AnalyticBackend, ServeBackend,
    ServeConfig, ServePlan, ServeSession, SloPolicy,
};
use lm_trace::{expo, FlightDump, FlightRecorder, ServeDriftReport, Tracer};
use serde::{Deserialize, Serialize};

pub const DEFAULT_SEED: u64 = 7;
pub const DEFAULT_RPS: f64 = 4.0;
pub const DEFAULT_REQUESTS: usize = 32;

/// Per-metric drift tolerances (DESIGN.md §13). The TTFT predictor is a
/// queueing estimate, not a replay, so the bars are documented per
/// metric rather than a single epsilon: tails are noisier than means,
/// and Little's-law queue depth inherits the TTFT error twice.
pub const DRIFT_TOLERANCES: [(&str, f64); 4] = [
    ("ttft_mean_s", 0.35),
    ("ttft_p99_s", 0.50),
    ("slot_occupancy_mean", 0.15),
    ("queue_depth_mean", 0.50),
];

/// One audited metric against its documented tolerance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftGate {
    pub metric: String,
    /// Documented `|ratio - 1|` bound.
    pub tolerance: f64,
    pub ratio: f64,
    pub ok: bool,
}

/// Everything `repro obs` writes to `results/obs.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsReport {
    pub seed: u64,
    pub rps: f64,
    pub requests: usize,
    pub plan: ServePlan,
    /// Lifecycle events / boundary samples / TTFT pairs collected.
    pub lifecycle_events: usize,
    pub boundary_samples: usize,
    pub ttft_samples: usize,
    /// The full predicted-vs-observed audit.
    pub drift: ServeDriftReport,
    pub drift_gates: Vec<DriftGate>,
    /// The verify.sh gate: every metric within its tolerance.
    pub drift_ok: bool,
    /// OpenMetrics rendering of the audited run's registry.
    pub exposition: String,
    /// render → parse → re-render is byte-identical.
    pub expo_round_trip_ok: bool,
    /// Post-mortem frozen by the injected overload.
    pub flight: FlightDump,
    /// The dump's JSON round-trips losslessly.
    pub flight_round_trip_ok: bool,
    pub lint_errors: usize,
    pub lint_warnings: usize,
    pub obs_ok: bool,
}

/// Gate the audit's ratios against [`DRIFT_TOLERANCES`]. A metric with
/// an undefined ratio (zero prediction) fails its gate: at the default
/// seed every audited metric must be live.
fn gate_drift(drift: &ServeDriftReport) -> (Vec<DriftGate>, bool) {
    let gates: Vec<DriftGate> = DRIFT_TOLERANCES
        .iter()
        .map(|&(metric, tolerance)| {
            let ratio = drift
                .metric(metric)
                .and_then(|m| m.ratio)
                .unwrap_or(f64::INFINITY);
            DriftGate {
                metric: metric.to_string(),
                tolerance,
                ratio,
                ok: (ratio - 1.0).abs() <= tolerance,
            }
        })
        .collect();
    let ok = gates.iter().all(|g| g.ok);
    (gates, ok)
}

/// Starve the default workload onto two slots under a floor-level
/// observe-only objective: queueing past the floor is guaranteed, the
/// first realized breach freezes the recorder, no actuator fires.
fn flight_pass(seed: u64, rps: f64, n: usize) -> FlightDump {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, backend.model());
    let flight = FlightRecorder::new(256);
    let mut cfg = ServeConfig {
        flight: flight.clone(),
        tracer: Tracer::new(),
        max_slots: 2,
        ..ServeConfig::default()
    };
    let plan = plan_admission(&backend, &cfg)
        .unwrap_or_else(|e| panic!("flight-pass planning failed: {e}"));
    let floor = backend.prefill_seconds(plan.slot_context, plan.slots) + plan.est_step_seconds;
    cfg.slo = Some(SloPolicy::observe(floor * 1.01));
    ServeSession::new(&backend)
        .config(cfg)
        .run(traffic)
        .unwrap_or_else(|e| panic!("flight-pass serving failed: {e}"));
    flight
        .dump()
        .unwrap_or_else(|| panic!("injected overload did not freeze the flight recorder"))
}

/// Run the audit. Returns the report and the Perfetto serve timeline of
/// the audited run as JSON.
pub fn run(seed: u64, rps: f64, n: usize) -> (ObsReport, String) {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, backend.model());
    let cfg = ServeConfig {
        tracer: Tracer::new(),
        flight: FlightRecorder::new(256),
        ..ServeConfig::default()
    };
    let (plan, out) = ServeSession::new(&backend)
        .config(cfg.clone())
        .run(traffic)
        .unwrap_or_else(|e| panic!("obs serving failed: {e}"))
        .into_continuous();

    // 1. Drift: the scheduler's own record vs the model's predictions.
    let drift = out.obs.audit(&plan);
    let (drift_gates, drift_ok) = gate_drift(&drift);

    // 2. Exposition: render → parse → re-render must be byte-identical.
    let snap = cfg.tracer.snapshot().metrics;
    let exposition = expo::render(&snap);
    let expo_round_trip_ok = expo::parse(&exposition)
        .map(|parsed| expo::render(&parsed) == exposition)
        .unwrap_or(false);

    // 3. Flight recorder: an injected overload freezes a dump that
    //    survives a JSON round-trip.
    let flight = flight_pass(seed, rps, n);
    let flight_round_trip_ok = serde_json::to_string(&flight)
        .ok()
        .and_then(|json| serde_json::from_str::<FlightDump>(&json).ok())
        .is_some_and(|back| back == flight);

    // 4. The audited config itself lints clean.
    let lint = lm_analyze::lint_obs(&obs_probe(&cfg));
    let lint_errors = lint.error_count();
    let lint_warnings = lint.warning_count();

    let obs_ok = drift_ok && expo_round_trip_ok && flight_round_trip_ok && lint_errors == 0;
    let timeline = serve_timeline(&plan, &out.obs).to_json_string();
    let report = ObsReport {
        seed,
        rps,
        requests: n,
        plan,
        lifecycle_events: out.obs.lifecycle.len(),
        boundary_samples: out.obs.boundaries.len(),
        ttft_samples: out.obs.ttft.len(),
        drift,
        drift_gates,
        drift_ok,
        exposition,
        expo_round_trip_ok,
        flight,
        flight_round_trip_ok,
        lint_errors,
        lint_warnings,
        obs_ok,
    };
    (report, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_passes_every_gate() {
        let (r, timeline) = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(
            r.obs_ok,
            "drift_ok={} gates={:?} expo={} flight={} lint_errors={}",
            r.drift_ok, r.drift_gates, r.expo_round_trip_ok, r.flight_round_trip_ok, r.lint_errors
        );
        assert!(r.ttft_samples > 0 && r.boundary_samples > 0);
        assert!(r.exposition.contains("serve_ttft_s"), "{}", r.exposition);
        assert!(r.flight.reason.starts_with("slo_breach"), "{}", r.flight.reason);
        assert!(timeline.contains("traceEvents"));
    }

    #[test]
    fn report_is_deterministic_up_to_the_flight_clock() {
        // Everything in the report derives from the virtual clock, so
        // two runs serialise byte-identically.
        let a = serde_json::to_string(&run(DEFAULT_SEED, DEFAULT_RPS, 16).0).unwrap();
        let b = serde_json::to_string(&run(DEFAULT_SEED, DEFAULT_RPS, 16).0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn drift_gate_fails_on_undefined_ratio() {
        let empty = lm_trace::serve_drift_report(&[("ttft_mean_s", 0.0, 1.0)]);
        let (gates, ok) = gate_drift(&empty);
        assert!(!ok);
        assert!(gates.iter().any(|g| !g.ok && g.metric == "ttft_mean_s"));
    }
}
