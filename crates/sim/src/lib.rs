//! # lm-sim
//!
//! Simulation substrate for the LM-Offload reproduction: the hardware the
//! paper ran on, replaced by models (DESIGN.md §2).
//!
//! - [`policy`]: offloading policies — the `(wg, cg, hg)` placements,
//!   per-tensor precisions and attention placement of Table 3, with
//!   memory-feasibility checks;
//! - [`tasks`]: the six decode tasks of Algorithm 1, the [`tasks::CostProvider`]
//!   abstraction, and the analytic Eq. 1/2 aggregation;
//! - [`analytic`]: the base (quantization-free) cost model — FlexGen's
//!   accounting — that `lm-offload` extends with Eq. 3-7 overheads;
//! - [`exec`]: an event-driven executor of the decode loop against FIFO
//!   hardware resources, validating the analytic `max()` model and
//!   producing the per-task breakdown of Fig. 8;
//! - [`pipeline`]: pipeline-parallel multi-GPU simulation for the weak
//!   scaling study of Fig. 9.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod analytic;
pub mod exec;
pub mod pipeline;
pub mod policy;
pub mod tasks;

pub use analytic::{BaseCostModel, DISK_BW, TASK_OVERHEAD};
pub use exec::{
    predicted_task_totals, simulate, simulate_faulted, simulate_traced, SimReport, TaskBreakdown,
};
pub use pipeline::{
    host_contention, simulate_pipeline, simulate_pipeline_faulted, PipelineReport,
};
pub use policy::{fits, max_gpu_batch, memory_plan, AttentionPlacement, MemoryPlan, Policy};
pub use tasks::{t_gen, total_latency, CostProvider, DegradedLink, TaskExtras};
