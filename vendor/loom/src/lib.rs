//! Offline stand-in for the `loom` model checker.
//!
//! The real loom instruments the C11 memory model and explores thread
//! interleavings with DPOR. This stand-in keeps the same *testing API*
//! (`loom::model`, `loom::thread`, `loom::sync::{atomic, Mutex, Condvar}`)
//! but implements a simpler, still systematic checker:
//!
//! - every test execution is fully **serialized**: exactly one logical
//!   thread runs at a time, and control only transfers at instrumented
//!   points (atomic operations, mutex acquisition, condvar waits/notifies,
//!   spawn/join);
//! - the scheduler explores the tree of scheduling decisions with a
//!   **preemption-bounded depth-first search** (CHESS-style): within one
//!   execution at most `LOOM_PREEMPTION_BOUND` (default 2) involuntary
//!   context switches are inserted, which is known to expose the vast
//!   majority of real concurrency bugs while keeping the state space
//!   polynomial;
//! - the memory model is **sequentially consistent**: all atomics execute
//!   as `SeqCst` regardless of the ordering argument. Logic races (lost
//!   wakeups, double releases, missed shutdowns, accounting drift) are
//!   caught; weak-memory-only reorderings are out of scope.
//!
//! A blocked-forever state (all live threads waiting) is reported as a
//! model-check failure with the decision path that produced it, which is
//! exactly the class of bug the executor's POISON shutdown protocol and
//! condvar-based queues can have.
//!
//! Environment knobs: `LOOM_PREEMPTION_BOUND` (default 2),
//! `LOOM_MAX_ITERATIONS` (default 20000), `LOOM_LOG=1` prints the number
//! of explored executions.

mod sched;
pub mod sync;
pub mod thread;

#[cfg(test)]
mod tests;

pub use sched::{explore, model, Exploration, Options};

/// Model-internal cell types. The real loom requires `loom::cell::Cell`
/// etc. for non-atomic shared data; here plain captured state behind
/// `sync::Mutex` covers the workspace's tests, so only a thin `Cell`
/// passthrough is provided.
pub mod cell {
    /// Passthrough of [`std::cell::Cell`] (single-threaded data only).
    pub use std::cell::Cell;
}
