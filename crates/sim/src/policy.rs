//! Offloading policies: the `(wg, cg, hg)` placement percentages of
//! Table 3, per-tensor-class precisions, and attention placement — the
//! decision variables every framework in the paper searches over.

use lm_hardware::Platform;
use lm_models::{footprint, DType, ModelConfig, Workload};
use serde::{Deserialize, Serialize};

/// Where the attention computation of the decode phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionPlacement {
    /// Attention on GPU: the KV cache streams over the interconnect.
    Gpu,
    /// Attention offloaded to CPU: the KV cache stays in host memory and
    /// only activations cross the link (FlexGen's default for long
    /// sequences).
    Cpu,
}

/// A complete offloading policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Fraction of weights resident on GPU (`wg`, 0..=1).
    pub wg: f64,
    /// Fraction of KV cache resident on GPU (`cg`).
    pub cg: f64,
    /// Fraction of activations resident on GPU (`hg`).
    pub hg: f64,
    /// At-rest precision of the weights.
    pub weights_dtype: DType,
    /// At-rest precision of the KV cache.
    pub kv_dtype: DType,
    /// Attention placement.
    pub attention: AttentionPlacement,
}

impl Policy {
    /// FlexGen's §3.1 default: attention offloaded, no quantization,
    /// everything streamed from CPU.
    pub fn flexgen_default() -> Self {
        Policy {
            wg: 0.0,
            cg: 0.0,
            hg: 0.0,
            weights_dtype: DType::F16,
            kv_dtype: DType::F16,
            attention: AttentionPlacement::Cpu,
        }
    }

    fn check_fraction(name: &str, x: f64) -> Result<(), String> {
        if !(0.0..=1.0).contains(&x) || !x.is_finite() {
            return Err(format!("{name} = {x} outside [0, 1]"));
        }
        Ok(())
    }

    /// Validate the percentage fields.
    pub fn validate(&self) -> Result<(), String> {
        Self::check_fraction("wg", self.wg)?;
        Self::check_fraction("cg", self.cg)?;
        Self::check_fraction("hg", self.hg)?;
        if self.attention == AttentionPlacement::Cpu && self.cg > 0.0 {
            // With CPU attention the KV cache must live where the compute
            // is; a GPU-resident share would never be read.
            return Err(format!(
                "cg = {} useless with CPU attention (KV is consumed on CPU)",
                self.cg
            ));
        }
        Ok(())
    }
}

/// Byte-level memory requirements of a (policy, model, workload) triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    pub gpu_bytes: u64,
    pub cpu_bytes: u64,
    /// Total footprint (the "mem" column of Table 3).
    pub total_bytes: u64,
}

/// Working-buffer slack reserved on the GPU for in-flight layer weights,
/// double-buffered activations and temporaries (fraction of GPU memory).
pub const GPU_WORKING_RESERVE: f64 = 0.10;

/// Compute the memory plan for a policy.
pub fn memory_plan(
    cfg: &ModelConfig,
    w: &Workload,
    platform: &Platform,
    policy: &Policy,
) -> MemoryPlan {
    let weights = footprint::weights_bytes(cfg, policy.weights_dtype);
    let kv = footprint::kv_cache_bytes_peak(cfg, w, policy.kv_dtype);
    let act = footprint::activation_bytes(cfg, w, DType::F16);
    // In-flight working set on GPU: two layers of weights (current +
    // prefetched) at the streaming precision plus activation buffers.
    let per_layer_weights = weights / cfg.num_layers as u64;
    let working = 2 * per_layer_weights + 2 * act;
    let gpu_bytes = (policy.wg * weights as f64) as u64
        + (policy.cg * kv as f64) as u64
        + (policy.hg * act as f64) as u64
        + working;
    let cpu_bytes = ((1.0 - policy.wg) * weights as f64) as u64
        + ((1.0 - policy.cg) * kv as f64) as u64
        + ((1.0 - policy.hg) * act as f64) as u64;
    let _ = platform;
    MemoryPlan {
        gpu_bytes,
        cpu_bytes,
        total_bytes: weights + kv + act,
    }
}

/// Whether a policy fits the platform's memories.
pub fn fits(cfg: &ModelConfig, w: &Workload, platform: &Platform, policy: &Policy) -> bool {
    let plan = memory_plan(cfg, w, platform, policy);
    let gpu_cap = (platform.gpu.mem_capacity as f64 * (1.0 - GPU_WORKING_RESERVE)) as u64;
    plan.gpu_bytes <= gpu_cap && plan.cpu_bytes <= platform.cpu.mem_capacity
}

/// Largest GPU batch size (in multiples of `step`) for which `policy`
/// still fits, holding the number of zig-zag batches fixed.
pub fn max_gpu_batch(
    cfg: &ModelConfig,
    base: &Workload,
    platform: &Platform,
    policy: &Policy,
    step: u64,
    cap: u64,
) -> Option<u64> {
    let mut best = None;
    let mut bsz = step;
    while bsz <= cap {
        let w = Workload::new(base.prompt_len, base.gen_len, bsz, base.num_batches);
        if fits(cfg, &w, platform, policy) {
            best = Some(bsz);
        } else {
            break;
        }
        bsz += step;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    #[test]
    fn flexgen_default_is_valid() {
        assert!(Policy::flexgen_default().validate().is_ok());
    }

    #[test]
    fn out_of_range_fractions_rejected() {
        let mut p = Policy::flexgen_default();
        p.wg = 1.5;
        assert!(p.validate().is_err());
        p.wg = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn cpu_attention_with_gpu_kv_rejected() {
        let mut p = Policy::flexgen_default();
        p.cg = 0.5;
        assert!(p.validate().is_err());
        p.attention = AttentionPlacement::Gpu;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn opt30b_motivation_total_matches_table() {
        // Table 3 / §3.1: OPT-30B fp16 everything ≈ 214 GiB total.
        let platform = presets::single_gpu_a100();
        let plan = memory_plan(
            &models::opt_30b(),
            &Workload::motivation(),
            &platform,
            &Policy::flexgen_default(),
        );
        let gib = plan.total_bytes as f64 / (1u64 << 30) as f64;
        assert!((gib - 214.0).abs() < 3.0, "total {gib:.1} GiB");
    }

    #[test]
    fn opt30b_does_not_fit_without_offloading() {
        // §3.1: "Without tensor offloading, our evaluation platform cannot
        // be used for model inference."
        let platform = presets::single_gpu_a100();
        let all_gpu = Policy {
            wg: 1.0,
            cg: 1.0,
            hg: 1.0,
            weights_dtype: DType::F16,
            kv_dtype: DType::F16,
            attention: AttentionPlacement::Gpu,
        };
        assert!(!fits(
            &models::opt_30b(),
            &Workload::motivation(),
            &platform,
            &all_gpu
        ));
        // But the fully-offloaded FlexGen default fits in 240 GB host RAM.
        assert!(fits(
            &models::opt_30b(),
            &Workload::motivation(),
            &platform,
            &Policy::flexgen_default()
        ));
    }

    #[test]
    fn quantized_weights_fit_on_gpu() {
        // ZeRO-style: OPT-30B 4-bit weights ≈ 14 GiB < 40 GiB A100.
        let platform = presets::single_gpu_a100();
        let zero = Policy {
            wg: 1.0,
            cg: 0.0,
            hg: 1.0,
            weights_dtype: DType::Int4,
            kv_dtype: DType::F16,
            attention: AttentionPlacement::Cpu,
        };
        let w = Workload::new(64, 128, 64, 1);
        assert!(fits(&models::opt_30b(), &w, &platform, &zero));
    }

    #[test]
    fn max_batch_monotone_in_capacity() {
        let platform = presets::single_gpu_a100();
        let base = Workload::new(64, 8, 64, 10);
        let p = Policy::flexgen_default();
        let got = max_gpu_batch(&models::opt_30b(), &base, &platform, &p, 64, 4096).unwrap();
        assert!(got >= 64);
        // Bigger KV dtype shrinks the feasible batch.
        let mut p4 = p;
        p4.kv_dtype = DType::Int4;
        let got4 = max_gpu_batch(&models::opt_30b(), &base, &platform, &p4, 64, 4096).unwrap();
        assert!(got4 >= got);
    }
}
