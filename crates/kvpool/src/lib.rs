//! # lm-kvpool
//!
//! A block-granular paged KV allocator with cross-request prefix
//! sharing (DESIGN.md §14). Instead of leasing one contiguous
//! worst-case slab per sequence, KV residency is split into fixed-size
//! *pages* of `page_tokens` tokens each:
//!
//! - a **free-list pool** ([`PagedKvPool`]) hands out pages backed by
//!   byte-accounted [`MemPool`] leases, so page accounting and byte
//!   accounting are provably the same number;
//! - each sequence holds a **page table** ([`SeqKv`]) mapping its
//!   logical token positions to physical pages, grown one page at a
//!   time as tokens are appended;
//! - a **prefix index** (a radix tree flattened to aligned-prefix keys)
//!   lets a request whose prompt shares a prefix with a resident
//!   sequence map the *same physical pages* instead of recomputing and
//!   re-storing them;
//! - shared pages are **refcounted copy-on-write**: a page mapped by
//!   more than one sequence is read-only, and the first divergent
//!   write forks it — the writer copies the shared prefix of the page
//!   into a private page and remaps, leaving every other reader intact.
//!
//! Pages store their actual token content. That is deliberate: it is
//! what makes sharing *checkable* — the property suite asserts that a
//! sequence's logical token stream survives any interleaving of
//! sharing, forking and freeing, which would catch a write-through to
//! a shared page immediately.
//!
//! Determinism contract: the allocator has no clocks, no RNG and no
//! hash-order dependence (the index is a `BTreeMap`); page ids are
//! recycled LIFO from the free list. Given the same call sequence it
//! returns the same pages, which is what lets the serve scheduler stay
//! byte-identical across runs.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::expect_used))]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use lm_engine::{Lease, MemPool, PoolExhausted};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Page geometry: how many tokens one physical page covers and what a
/// token of KV costs across all layers. Derived from the model config
/// by the admission planner (`page_bytes = page_tokens ·
/// bytes_per_token` is the `LMA280` invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageConfig {
    /// Tokens per page. Must divide the plan's KV block (slot context).
    pub page_tokens: usize,
    /// KV bytes one token occupies across every layer (2 · hidden ·
    /// dtype bytes · layers).
    pub bytes_per_token: usize,
}

impl PageConfig {
    /// Bytes one physical page charges to the backing [`MemPool`].
    pub fn page_bytes(&self) -> usize {
        self.page_tokens * self.bytes_per_token
    }

    /// Pages needed to hold `tokens` logical tokens.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens.max(1))
    }
}

/// A paged-KV protocol violation: the caller broke the admit/append
/// contract (appending past the admitted capacity, or drawing from an
/// exhausted growth reserve). These were panics before the
/// `expect_used` deny; as typed errors the serve scheduler can surface
/// them as request failures instead of bringing the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvProtocolError {
    /// `append` called on a sequence already at its admitted capacity.
    AppendPastCapacity {
        /// Tokens already written.
        len: usize,
        /// Tokens the admission reserved for.
        capacity_tokens: usize,
    },
    /// The growth reserve was empty where the admission contract says a
    /// page must be banked (fresh growth page, COW fork target, or the
    /// collapsed-fork spare).
    ReserveExhausted {
        /// Tokens already written when the draw failed.
        len: usize,
        /// What the page was needed for.
        needed_for: &'static str,
    },
}

impl std::fmt::Display for KvProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvProtocolError::AppendPastCapacity { len, capacity_tokens } => write!(
                f,
                "append past reserved capacity: {len} tokens written of {capacity_tokens} admitted"
            ),
            KvProtocolError::ReserveExhausted { len, needed_for } => write!(
                f,
                "growth reserve empty at token {len} (needed for {needed_for}); \
                 admission should have banked this page"
            ),
        }
    }
}

impl std::error::Error for KvProtocolError {}

/// Cumulative allocator counters, exposed for `results/serve.json` and
/// the paging probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingStats {
    /// Physical pages allocated from the free list / `MemPool`.
    pub pages_allocated: u64,
    /// Physical pages returned (refcount reached zero).
    pub pages_freed: u64,
    /// Page mappings served from the prefix index instead of a fresh
    /// allocation — each one is a whole page of prefill skipped.
    pub shared_hits: u64,
    /// Prompt tokens covered by shared mappings at admission.
    pub shared_tokens: u64,
    /// Copy-on-write forks: first divergent write into a shared page.
    pub cow_forks: u64,
    /// Tokens copied by those forks (the only data movement sharing
    /// ever costs).
    pub copied_tokens: u64,
    /// In-place writes that landed on a page mapped by another
    /// sequence — the double-mapped-writable hazard `LMA282` trips on.
    /// The COW discipline makes this permanently zero; the counter is
    /// measured independently of the fork decision so a future
    /// regression in that decision fires the lint in every serve run.
    pub shared_write_violations: u64,
}

/// Point-in-time pool state for invariant checks and the `LMA28x`
/// paging probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolCounters {
    /// Capacity of the backing pool, in whole pages.
    pub pages_total: u64,
    /// Pages currently holding a `MemPool` lease.
    pub pages_in_use: u64,
    /// High-water mark of `pages_in_use`.
    pub pages_peak: u64,
    /// Sum of per-page refcounts (must equal the sum of live page-table
    /// mappings — `LMA281`).
    pub refcount_sum: u64,
}

struct PageState {
    refs: u32,
    /// Actual token content; append-only except COW truncation by a
    /// sole owner reclaiming a forked-away writer's tail.
    content: Vec<u32>,
    /// The byte lease this page charges while alive.
    lease: Option<Lease>,
    /// Aligned-prefix key registered in the full-page index.
    full_key: Option<Vec<u32>>,
    /// Exact-prefix key registered in the partial-tail index.
    partial_key: Option<Vec<u32>>,
}

impl PageState {
    fn empty() -> Self {
        PageState {
            refs: 0,
            content: Vec::new(),
            lease: None,
            full_key: None,
            partial_key: None,
        }
    }
}

struct PoolInner {
    pages: Vec<PageState>,
    /// Recycled page ids, popped LIFO — deterministic reuse order.
    free: Vec<usize>,
    /// Radix/prefix tree flattened to keys: the page-aligned token
    /// prefix `known[..k·page_tokens]` maps to the physical page
    /// holding chunk `k-1`. Keys are prefix-closed (registering chunk
    /// `k` implies chunks `1..k` are registered), which is what makes
    /// the longest-match walk below correct.
    full_index: BTreeMap<Vec<u32>, usize>,
    /// Exact known-prefix key → the open (partially filled) tail page,
    /// shareable only by a request with the *identical* prefix; the
    /// first divergent append forks it (COW).
    partial_index: BTreeMap<Vec<u32>, usize>,
    in_use: usize,
    peak: usize,
    stats: PagingStats,
}

/// The paged KV pool. Every physical page is backed by a
/// `page_bytes`-sized RAII lease from the wrapped [`MemPool`], so the
/// pool's page accounting and the byte pool's accounting can be checked
/// against each other at any moment ([`PagedKvPool::accounting_balanced`]).
pub struct PagedKvPool {
    mem: Arc<MemPool>,
    cfg: PageConfig,
    inner: Mutex<PoolInner>,
}

impl PagedKvPool {
    pub fn new(mem: Arc<MemPool>, cfg: PageConfig) -> Arc<Self> {
        assert!(cfg.page_tokens > 0, "page_tokens must be positive");
        assert!(cfg.bytes_per_token > 0, "bytes_per_token must be positive");
        Arc::new(PagedKvPool {
            mem,
            cfg,
            inner: Mutex::new(PoolInner {
                pages: Vec::new(),
                free: Vec::new(),
                full_index: BTreeMap::new(),
                partial_index: BTreeMap::new(),
                in_use: 0,
                peak: 0,
                stats: PagingStats::default(),
            }),
        })
    }

    pub fn cfg(&self) -> PageConfig {
        self.cfg
    }

    /// Capacity of the backing byte pool, in whole pages.
    pub fn capacity_pages(&self) -> usize {
        self.mem.capacity() / self.cfg.page_bytes().max(1)
    }

    /// Worst-case pages a sequence of `known_tokens + gen_len` tokens
    /// can come to own after full divergence (what admission must be
    /// able to satisfy even if every shared mapping forks).
    pub fn required_pages(&self, known_tokens: usize, gen_len: usize) -> usize {
        self.cfg.pages_for(known_tokens + gen_len)
    }

    pub fn pages_in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    pub fn peak_pages(&self) -> usize {
        self.inner.lock().peak
    }

    pub fn stats(&self) -> PagingStats {
        self.inner.lock().stats
    }

    pub fn counters(&self) -> PoolCounters {
        let inner = self.inner.lock();
        PoolCounters {
            pages_total: self.capacity_pages() as u64,
            pages_in_use: inner.in_use as u64,
            pages_peak: inner.peak as u64,
            refcount_sum: inner.pages.iter().map(|p| p.refs as u64).sum(),
        }
    }

    /// The free-list-vs-byte-pool consistency invariant: every page in
    /// use holds exactly one `page_bytes` lease, so the backing pool's
    /// byte accounting must be exactly `in_use · page_bytes`.
    pub fn accounting_balanced(&self) -> bool {
        self.pages_in_use() * self.cfg.page_bytes() == self.mem.used()
    }

    /// Admit a sequence whose first `known.len()` tokens are known up
    /// front (prompt, plus any resumed generated prefix) and which will
    /// append at most `gen_len` more.
    ///
    /// Walks the prefix index for the longest shared prefix: whole
    /// matching pages are mapped refcounted instead of allocated, and
    /// an exactly-matching open tail page is mapped copy-on-write.
    /// Everything the sequence could come to own after full divergence
    /// is reserved eagerly — `pages_for(known + gen_len)` minus the
    /// fully shared pages — so appends (including COW forks) can never
    /// run out of memory mid-decode. Atomic: on exhaustion nothing is
    /// mapped and nothing stays allocated.
    pub fn admit(
        self: &Arc<Self>,
        known: &[u32],
        gen_len: usize,
    ) -> Result<SeqKv, PoolExhausted> {
        let page = self.cfg.page_tokens;
        let total_pages = self.cfg.pages_for(known.len() + gen_len);
        let mut inner = self.inner.lock();

        // Longest-prefix walk over full pages (keys are prefix-closed,
        // so the first miss ends the match).
        let full_chunks = known.len() / page;
        let mut shared_full: Vec<usize> = Vec::new();
        for k in 1..=full_chunks {
            match inner.full_index.get(&known[..k * page]) {
                Some(&pid) => shared_full.push(pid),
                None => break,
            }
        }
        // The open tail is shareable only when the entire known prefix
        // matches a registered one (same full pages, same partial
        // content) — anything less would alias divergent tokens.
        let tail_fill = known.len() % page;
        let shared_tail = (tail_fill > 0 && shared_full.len() == full_chunks)
            .then(|| inner.partial_index.get(known).copied())
            .flatten();

        // A shared tail still needs a private replacement on the first
        // append (the fork), so only gen_len == 0 lets it reduce the
        // reservation. The fork obligation rides with the *sharer*: the
        // page's creator reserved no fork page and never needs one — it
        // may write in place past the registered fill, because every
        // sharer's logical view stops at that fill and reads are sliced
        // by each sequence's own length.
        let pending_tail_fork = shared_tail.is_some() && gen_len > 0;
        let reserve_discount = usize::from(gen_len == 0 && shared_tail.is_some());
        let private_needed = total_pages - shared_full.len() - reserve_discount;
        // How the private pages will be spent, fixed up front so the
        // commit below can split `fresh` by construction instead of
        // drawing from an iterator that could (if the arithmetic ever
        // drifted) run dry mid-commit.
        let unshared_fulls = full_chunks - shared_full.len();
        let needs_private_tail = tail_fill > 0 && shared_tail.is_none();
        debug_assert!(unshared_fulls + usize::from(needs_private_tail) <= private_needed);

        // Allocate every private page up front; roll back on failure.
        let mut fresh: Vec<usize> = Vec::with_capacity(private_needed);
        for _ in 0..private_needed {
            match self.mem.alloc(self.cfg.page_bytes()) {
                Ok(lease) => {
                    let pid = inner.free.pop().unwrap_or_else(|| {
                        inner.pages.push(PageState::empty());
                        inner.pages.len() - 1
                    });
                    let slot = &mut inner.pages[pid];
                    slot.refs = 1;
                    slot.lease = Some(lease);
                    slot.content.clear();
                    inner.in_use += 1;
                    inner.stats.pages_allocated += 1;
                    fresh.push(pid);
                }
                Err(e) => {
                    for pid in fresh {
                        Self::release_locked(&mut inner, pid);
                    }
                    return Err(e);
                }
            }
        }
        inner.peak = inner.peak.max(inner.in_use);

        // Commit: map shared pages (refcount++), lay the unshared part
        // of the prompt into fresh pages, and bank the rest as the
        // growth reserve.
        let mut pages: Vec<usize> = Vec::with_capacity(total_pages);
        for &pid in &shared_full {
            inner.pages[pid].refs += 1;
            inner.stats.shared_hits += 1;
            pages.push(pid);
        }
        let mut shared_tokens = shared_full.len() * page;
        // Partition the fresh pages: unshared full chunks, then the
        // optional private tail, then the growth reserve. The split
        // points are the counts fixed above, so every branch gets
        // exactly the pages its arithmetic claimed — no fallible draws.
        let reserve: Vec<usize> =
            fresh.split_off((unshared_fulls + usize::from(needs_private_tail)).min(fresh.len()));
        let private_tail = if needs_private_tail { fresh.pop() } else { None };
        for (k, pid) in (shared_full.len()..full_chunks).zip(fresh) {
            let chunk = &known[k * page..(k + 1) * page];
            inner.pages[pid].content.extend_from_slice(chunk);
            let key = known[..(k + 1) * page].to_vec();
            inner.pages[pid].full_key = Some(key.clone());
            inner.full_index.insert(key, pid);
            pages.push(pid);
        }
        if tail_fill > 0 {
            if let Some(pid) = shared_tail {
                inner.pages[pid].refs += 1;
                inner.stats.shared_hits += 1;
                shared_tokens += tail_fill;
                pages.push(pid);
            } else if let Some(pid) = private_tail {
                inner.pages[pid]
                    .content
                    .extend_from_slice(&known[full_chunks * page..]);
                inner.pages[pid].partial_key = Some(known.to_vec());
                inner.partial_index.insert(known.to_vec(), pid);
                pages.push(pid);
            }
        }
        inner.stats.shared_tokens += shared_tokens as u64;
        drop(inner);

        Ok(SeqKv {
            pool: Arc::clone(self),
            pages,
            reserve,
            len: known.len(),
            shared_tokens,
            capacity_tokens: known.len() + gen_len,
            pending_tail_fork,
        })
    }

    /// Drop one reference to `pid`; at zero the page is unregistered
    /// from both indices, its lease drops, and its id returns to the
    /// free list.
    fn release_locked(inner: &mut PoolInner, pid: usize) {
        let page = &mut inner.pages[pid];
        debug_assert!(page.refs > 0, "release of unreferenced page {pid}");
        page.refs -= 1;
        if page.refs == 0 {
            if let Some(key) = page.full_key.take() {
                inner.full_index.remove(&key);
            }
            if let Some(key) = page.partial_key.take() {
                inner.partial_index.remove(&key);
            }
            let page = &mut inner.pages[pid];
            page.lease = None; // lease drop returns the bytes
            page.content.clear();
            inner.in_use -= 1;
            inner.stats.pages_freed += 1;
            inner.free.push(pid);
        }
    }
}

impl std::fmt::Debug for PagedKvPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("PagedKvPool")
            .field("cfg", &self.cfg)
            .field("counters", &c)
            .finish()
    }
}

/// One sequence's page table: an RAII handle over its mapped pages and
/// growth reserve. Dropping it releases every reference; pages whose
/// refcount reaches zero return to the free list.
pub struct SeqKv {
    pool: Arc<PagedKvPool>,
    /// Physical pages in logical order; `pages[i]` covers tokens
    /// `[i·page_tokens, (i+1)·page_tokens)`.
    pages: Vec<usize>,
    /// Pre-allocated private pages appends (and COW forks) draw from.
    reserve: Vec<usize>,
    /// Logical tokens written.
    len: usize,
    /// Prefix tokens mapped from the index at admission — prefill the
    /// scheduler does not have to re-pay.
    shared_tokens: usize,
    capacity_tokens: usize,
    /// This sequence mapped another sequence's open tail page at
    /// admission and must fork it (or return the provisioned fork page)
    /// before its first divergent write.
    pending_tail_fork: bool,
}

impl SeqKv {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity_tokens(&self) -> usize {
        self.capacity_tokens
    }

    pub fn shared_tokens(&self) -> usize {
        self.shared_tokens
    }

    /// Pages this sequence currently references (mapped + reserve) —
    /// the page-table side of the `LMA281` refcount balance.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len() + self.reserve.len()
    }

    /// Physical ids of every referenced page, mapped first.
    pub fn page_ids(&self) -> Vec<usize> {
        self.pages.iter().chain(self.reserve.iter()).copied().collect()
    }

    /// Append one generated token. The admission reservation covers
    /// every page this sequence can come to own, so under the protocol
    /// this cannot fail; a broken caller (appending past capacity, or a
    /// reservation-arithmetic regression draining the reserve) gets a
    /// typed [`KvProtocolError`] instead of a panic, with the pool left
    /// untouched. Writing into a page mapped by another sequence forks
    /// it first (copy-on-write), so no shared page is ever mutated.
    pub fn append(&mut self, token: u32) -> Result<(), KvProtocolError> {
        if self.len >= self.capacity_tokens {
            return Err(KvProtocolError::AppendPastCapacity {
                len: self.len,
                capacity_tokens: self.capacity_tokens,
            });
        }
        let page = self.pool.cfg.page_tokens;
        let off = self.len % page;
        let mut inner = self.pool.inner.lock();
        if off == 0 {
            // Token starts a fresh page: take one from the reserve.
            let Some(pid) = self.reserve.pop() else {
                return Err(KvProtocolError::ReserveExhausted {
                    len: self.len,
                    needed_for: "a fresh growth page",
                });
            };
            debug_assert!(self.len / page == self.pages.len());
            inner.pages[pid].content.push(token);
            self.pages.push(pid);
        } else {
            let idx = self.pages.len() - 1;
            let pid = self.pages[idx];
            let must_fork = self.pending_tail_fork;
            if must_fork && inner.pages[pid].refs > 1 {
                // COW fork: copy the shared prefix of the open page
                // into a private one and remap; other readers keep the
                // original untouched. The fork target was reserved at
                // admission (a tail sharer always carries one).
                let Some(fork) = self.reserve.pop() else {
                    return Err(KvProtocolError::ReserveExhausted {
                        len: self.len,
                        needed_for: "the copy-on-write fork target",
                    });
                };
                let prefix: Vec<u32> = inner.pages[pid].content[..off].to_vec();
                inner.stats.cow_forks += 1;
                inner.stats.copied_tokens += off as u64;
                let dst = &mut inner.pages[fork];
                dst.content.clear();
                dst.content.extend_from_slice(&prefix);
                dst.content.push(token);
                self.pages[idx] = fork;
                PagedKvPool::release_locked(&mut inner, pid);
            } else {
                if must_fork {
                    // Sharing collapsed before the first divergent
                    // write; the provisioned fork page goes straight
                    // back to the pool instead of idling in reserve.
                    let Some(spare) = self.reserve.pop() else {
                        return Err(KvProtocolError::ReserveExhausted {
                            len: self.len,
                            needed_for: "the collapsed-fork spare",
                        });
                    };
                    PagedKvPool::release_locked(&mut inner, spare);
                }
                // In-place write. Safe even while shared: the page's
                // creator extends past the registered fill, and every
                // sharer's view is sliced to its own length. The
                // sensor measures corruption independently of the fork
                // decision (`LMA282`): truncating *materialized*
                // content on a page others still reference would be
                // observable damage, not a legal extension.
                if inner.pages[pid].refs > 1 && off < inner.pages[pid].content.len() {
                    inner.stats.shared_write_violations += 1;
                }
                // Truncation reclaims the tail a forked-away writer may
                // have left behind — our logical view ends at `off`.
                let dst = &mut inner.pages[pid].content;
                dst.truncate(off);
                dst.push(token);
            }
            self.pending_tail_fork = false;
        }
        self.len += 1;
        Ok(())
    }

    /// Reconstruct the logical token stream from the page table. The
    /// property suite's ground truth: sharing and forking must never
    /// change what a sequence reads back.
    pub fn tokens(&self) -> Vec<u32> {
        let page = self.pool.cfg.page_tokens;
        let inner = self.pool.inner.lock();
        let mut out = Vec::with_capacity(self.len);
        for (i, &pid) in self.pages.iter().enumerate() {
            let take = (self.len - i * page).min(page);
            out.extend_from_slice(&inner.pages[pid].content[..take]);
        }
        out
    }
}

impl std::fmt::Debug for SeqKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqKv")
            .field("len", &self.len)
            .field("capacity_tokens", &self.capacity_tokens)
            .field("shared_tokens", &self.shared_tokens)
            .field("pages", &self.pages)
            .field("reserve", &self.reserve)
            .finish()
    }
}

impl Drop for SeqKv {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock();
        for &pid in self.pages.iter().chain(self.reserve.iter()) {
            PagedKvPool::release_locked(&mut inner, pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: usize) -> Arc<PagedKvPool> {
        let cfg = PageConfig {
            page_tokens: 4,
            bytes_per_token: 8,
        };
        let mem = MemPool::new("test.kv", pages * cfg.page_bytes());
        PagedKvPool::new(mem, cfg)
    }

    #[test]
    fn solo_sequence_allocates_exact_pages_and_reads_back() {
        let p = pool(16);
        let prompt: Vec<u32> = (0..10).collect();
        let mut seq = p.admit(&prompt, 6).unwrap();
        // ceil(16 / 4) = 4 pages: 2 full prompt, 1 open tail, 1 growth.
        assert_eq!(p.pages_in_use(), 4);
        assert_eq!(seq.shared_tokens(), 0);
        for t in 100..106 {
            seq.append(t).unwrap();
        }
        assert_eq!(
            seq.tokens(),
            prompt.iter().copied().chain(100..106).collect::<Vec<_>>()
        );
        assert!(p.accounting_balanced());
        drop(seq);
        assert_eq!(p.pages_in_use(), 0);
        assert!(p.accounting_balanced());
    }

    #[test]
    fn identical_prompts_share_full_and_tail_pages() {
        let p = pool(32);
        let prompt: Vec<u32> = (0..10).collect();
        let a = p.admit(&prompt, 4).unwrap();
        let before = p.pages_in_use();
        let b = p.admit(&prompt, 4).unwrap();
        // b shares 2 full pages + the open tail; it allocates only the
        // 2 pages it could come to own beyond the shared fulls... i.e.
        // required 4 minus 2 shared fulls.
        assert_eq!(p.pages_in_use(), before + 2);
        assert_eq!(b.shared_tokens(), 10);
        assert_eq!(a.tokens(), b.tokens());
        let shared: Vec<usize> = a
            .page_ids()
            .into_iter()
            .filter(|id| b.page_ids().contains(id))
            .collect();
        assert_eq!(shared.len(), 3, "2 full + 1 tail shared: {shared:?}");
    }

    #[test]
    fn divergent_append_forks_the_shared_tail_copy_on_write() {
        let p = pool(32);
        let prompt: Vec<u32> = (0..6).collect(); // 1 full page + tail fill 2
        let mut a = p.admit(&prompt, 4).unwrap();
        let mut b = p.admit(&prompt, 4).unwrap();
        assert_eq!(p.stats().cow_forks, 0);
        // The tail's creator extends in place — sharers only cover the
        // registered fill, so nothing they can read changes.
        a.append(77).unwrap();
        assert_eq!(p.stats().cow_forks, 0);
        // The sharer's first divergent write forks the tail it mapped,
        // using the fork page its admission reserved.
        b.append(88).unwrap();
        assert_eq!(p.stats().cow_forks, 1);
        assert_eq!(p.stats().copied_tokens, 2);
        let mut want_a = prompt.clone();
        want_a.push(77);
        let mut want_b = prompt.clone();
        want_b.push(88);
        assert_eq!(a.tokens(), want_a);
        assert_eq!(b.tokens(), want_b);
        assert_eq!(p.stats().shared_write_violations, 0);
        assert!(p.accounting_balanced());
    }

    #[test]
    fn prefix_only_sharing_maps_aligned_pages() {
        let p = pool(32);
        let mut sys: Vec<u32> = (0..8).collect(); // 2 aligned pages
        let a = p.admit(&{
            let mut v = sys.clone();
            v.extend([50, 51]);
            v
        }, 2)
        .unwrap();
        sys.extend([60, 61, 62]);
        let b = p.admit(&sys, 2).unwrap();
        assert_eq!(b.shared_tokens(), 8, "only the aligned prefix shares");
        let shared: Vec<usize> = a
            .page_ids()
            .into_iter()
            .filter(|id| b.page_ids().contains(id))
            .collect();
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn exhaustion_rolls_back_atomically() {
        let p = pool(3);
        let a = p.admit(&[1, 2, 3, 4, 5], 2).unwrap(); // 2 pages
        let err = p.admit(&[9, 9, 9, 9, 9, 9], 4).unwrap_err(); // needs 3
        assert!(err.requested > 0);
        assert_eq!(p.pages_in_use(), 2, "failed admit must leave nothing");
        assert!(p.accounting_balanced());
        drop(a);
        assert_eq!(p.pages_in_use(), 0);
    }

    #[test]
    fn freed_prefix_pages_unregister_and_recycle() {
        let p = pool(8);
        let prompt: Vec<u32> = (0..8).collect();
        let a = p.admit(&prompt, 0).unwrap();
        drop(a);
        assert_eq!(p.pages_in_use(), 0);
        // Re-admission after the owner died cannot share freed pages.
        let b = p.admit(&prompt, 0).unwrap();
        assert_eq!(b.shared_tokens(), 0);
        assert_eq!(p.stats().pages_freed, 2);
    }

    #[test]
    fn refcounts_balance_against_page_tables() {
        let p = pool(32);
        let prompt: Vec<u32> = (0..12).collect();
        let a = p.admit(&prompt, 4).unwrap();
        let b = p.admit(&prompt, 8).unwrap();
        let c = p.admit(&prompt[..4], 4).unwrap();
        let mapped = (a.mapped_pages() + b.mapped_pages() + c.mapped_pages()) as u64;
        assert_eq!(p.counters().refcount_sum, mapped);
        drop(b);
        let mapped = (a.mapped_pages() + c.mapped_pages()) as u64;
        assert_eq!(p.counters().refcount_sum, mapped);
        drop(a);
        drop(c);
        assert_eq!(p.counters().refcount_sum, 0);
        assert_eq!(p.pages_in_use(), 0);
    }
}
