//! Kahn's algorithm: topological sorting, level (wavefront) analysis, and
//! the *maximum concurrency level* LM-Offload derives its inter-op
//! parallelism from (Algorithm 3, line 4).

use crate::graph::OpGraph;

/// Result of a Kahn pass over a DAG.
#[derive(Debug, Clone)]
pub struct KahnAnalysis {
    /// A valid topological order of node indices.
    pub topo_order: Vec<usize>,
    /// `levels[i]` = wavefront of node `i` (all predecessors in lower
    /// wavefronts); nodes in the same wavefront can run concurrently.
    pub levels: Vec<usize>,
    /// Number of nodes per wavefront.
    pub level_widths: Vec<usize>,
}

impl KahnAnalysis {
    /// The paper's "maximum concurrency level": the widest wavefront.
    pub fn max_concurrency(&self) -> usize {
        self.level_widths.iter().copied().max().unwrap_or(0)
    }

    /// Critical-path length in wavefronts.
    pub fn depth(&self) -> usize {
        self.level_widths.len()
    }
}

/// Run Kahn's algorithm. Returns `None` if the graph has a cycle.
pub fn analyze(g: &OpGraph) -> Option<KahnAnalysis> {
    let n = g.len();
    let mut indeg = g.in_degrees();
    let mut levels = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut level_widths = Vec::new();
    let mut level = 0;

    while !frontier.is_empty() {
        level_widths.push(frontier.len());
        let mut next = Vec::new();
        for &u in &frontier {
            levels[u] = level;
            order.push(u);
            for &v in &g.edges[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    next.push(v);
                }
            }
        }
        frontier = next;
        level += 1;
    }

    if order.len() != n {
        return None; // cycle
    }
    Some(KahnAnalysis {
        topo_order: order,
        levels,
        level_widths,
    })
}

/// Exhibit one concrete cycle when [`analyze`] fails: the returned node
/// indices form a closed walk (`path[i] -> path[i+1]` are edges, and the
/// last node links back to the first). Returns `None` for a DAG.
///
/// Kahn's algorithm alone only proves *that* a cycle exists; diagnostics
/// need the witness, so this peels the acyclic fringe and then follows
/// in-cycle predecessors until a node repeats.
pub fn find_cycle(g: &OpGraph) -> Option<Vec<usize>> {
    let n = g.len();
    let mut indeg = g.in_degrees();
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut remaining = n;
    while let Some(u) = frontier.pop() {
        remaining -= 1;
        for &v in &g.edges[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                frontier.push(v);
            }
        }
    }
    if remaining == 0 {
        return None;
    }
    // Every node still holding in-degree sits on or downstream of a cycle
    // (within the remaining subgraph every node has an in-cycle
    // predecessor), so walking predecessors must revisit a node.
    let preds = g.predecessors();
    let start = (0..n).find(|&i| indeg[i] > 0)?;
    let mut seen_at = vec![usize::MAX; n];
    let mut walk = vec![start];
    seen_at[start] = 0;
    loop {
        let u = *walk.last()?;
        let p = *preds[u].iter().find(|&&q| indeg[q] > 0)?;
        if seen_at[p] != usize::MAX {
            // Closed the loop: the cycle is the walk from p's first visit,
            // reversed so the indices follow edge direction.
            let mut cycle: Vec<usize> = walk.split_off(seen_at[p]);
            cycle.reverse();
            return Some(cycle);
        }
        seen_at[p] = walk.len();
        walk.push(p);
    }
}

/// List-schedule the graph on `p` identical processors with per-node
/// execution times, returning the makespan. Greedy earliest-finish
/// assignment in topological order — the estimator Algorithm 3 uses for
/// the compute task once intra-op parallelism (and hence node times) is
/// fixed.
pub fn makespan(g: &OpGraph, times: &[f64], p: usize) -> f64 {
    assert_eq!(times.len(), g.len(), "one time per node required");
    assert!(p >= 1, "need at least one processor");
    let analysis = match analyze(g) {
        Some(a) => a,
        None => return f64::INFINITY,
    };
    let preds = g.predecessors();
    // ready[i]: when node i's inputs are all available.
    let mut finish = vec![0.0f64; g.len()];
    let mut proc_free = vec![0.0f64; p];
    for &u in &analysis.topo_order {
        let ready = preds[u]
            .iter()
            .map(|&q| finish[q])
            .fold(0.0f64, f64::max);
        // Earliest-available processor.
        let (pi, &free) = proc_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("p >= 1");
        let start = ready.max(free);
        finish[u] = start + times[u];
        proc_free[pi] = finish[u];
    }
    finish.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{attention_graph, OpKind};
    use proptest::prelude::*;

    fn diamond() -> OpGraph {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 0.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 0.0);
        let c = g.add("c", OpKind::Elementwise, 1.0, 0.0);
        let d = g.add("d", OpKind::Elementwise, 1.0, 0.0);
        g.depend(a, b);
        g.depend(a, c);
        g.depend(b, d);
        g.depend(c, d);
        g
    }

    #[test]
    fn diamond_levels() {
        let a = analyze(&diamond()).unwrap();
        assert_eq!(a.level_widths, vec![1, 2, 1]);
        assert_eq!(a.max_concurrency(), 2);
        assert_eq!(a.depth(), 3);
    }

    #[test]
    fn attention_graph_concurrency_matches_head_groups() {
        // Wavefronts: [q,k,v] → [concat] → [scores×G] → [softmax×G] →
        // [mix×G] → [out]. Max width = max(3, G).
        for groups in [2usize, 4, 7] {
            let g = attention_graph(16, 32, 128, groups);
            let a = analyze(&g).unwrap();
            assert_eq!(a.max_concurrency(), groups.max(3), "groups {groups}");
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = diamond();
        g.depend(3, 0); // close the cycle
        assert!(analyze(&g).is_none());
    }

    #[test]
    fn find_cycle_exhibits_a_real_cycle() {
        let mut g = diamond();
        g.depend(3, 0); // a->b->d->a (and a->c->d->a)
        let cycle = find_cycle(&g).expect("graph is cyclic");
        assert!(cycle.len() >= 2);
        for w in cycle.windows(2) {
            assert!(g.edges[w[0]].contains(&w[1]), "{cycle:?}");
        }
        let (first, last) = (cycle[0], *cycle.last().unwrap());
        assert!(g.edges[last].contains(&first), "{cycle:?}");
        // No repeats within the cycle itself.
        let uniq: std::collections::HashSet<_> = cycle.iter().collect();
        assert_eq!(uniq.len(), cycle.len());
    }

    #[test]
    fn find_cycle_none_on_dag() {
        assert!(find_cycle(&diamond()).is_none());
        assert!(find_cycle(&attention_graph(4, 8, 32, 3)).is_none());
        assert!(find_cycle(&OpGraph::new()).is_none());
    }

    #[test]
    fn find_cycle_skips_acyclic_fringe() {
        // A long acyclic tail feeding a small cycle: the witness must
        // contain only in-cycle nodes.
        let mut g = OpGraph::new();
        let t0 = g.add("t0", OpKind::Elementwise, 1.0, 0.0);
        let t1 = g.add("t1", OpKind::Elementwise, 1.0, 0.0);
        let c0 = g.add("c0", OpKind::Elementwise, 1.0, 0.0);
        let c1 = g.add("c1", OpKind::Elementwise, 1.0, 0.0);
        let c2 = g.add("c2", OpKind::Elementwise, 1.0, 0.0);
        g.depend(t0, t1);
        g.depend(t1, c0);
        g.depend(c0, c1);
        g.depend(c1, c2);
        g.depend(c2, c0);
        let cycle = find_cycle(&g).expect("cyclic");
        let set: std::collections::HashSet<_> = cycle.iter().copied().collect();
        assert_eq!(set, [c0, c1, c2].into_iter().collect());
    }

    #[test]
    fn topo_order_is_valid() {
        let g = attention_graph(8, 16, 64, 3);
        let a = analyze(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &u) in a.topo_order.iter().enumerate() {
                p[u] = i;
            }
            p
        };
        for (from, outs) in g.edges.iter().enumerate() {
            for &t in outs {
                assert!(pos[from] < pos[t], "edge {from}->{t} violated");
            }
        }
    }

    #[test]
    fn makespan_bounds() {
        let g = diamond();
        let times = vec![1.0, 2.0, 3.0, 1.0];
        let serial: f64 = times.iter().sum();
        let critical = 1.0 + 3.0 + 1.0;
        assert_eq!(makespan(&g, &times, 1), serial);
        let two = makespan(&g, &times, 2);
        assert_eq!(two, critical); // b runs in c's shadow
        // More processors can't help a width-2 graph.
        assert_eq!(makespan(&g, &times, 8), two);
    }

    #[test]
    fn makespan_infinite_on_cycle() {
        let mut g = diamond();
        g.depend(3, 0);
        assert_eq!(makespan(&g, &[1.0; 4], 2), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn prop_makespan_monotone_in_processors(
            groups in 1usize..6,
            seed in 0u64..100,
        ) {
            let g = attention_graph(8, 16, 64, groups);
            let times: Vec<f64> = (0..g.len())
                .map(|i| 1.0 + ((seed as usize + i * 7) % 5) as f64)
                .collect();
            let mut last = f64::INFINITY;
            for p in 1..=8 {
                let m = makespan(&g, &times, p);
                prop_assert!(m <= last + 1e-9, "p={p}: {m} > {last}");
                last = m;
            }
            // And never below the critical path or work/p bound.
            let work: f64 = times.iter().sum();
            let m8 = makespan(&g, &times, 8);
            prop_assert!(m8 + 1e-9 >= work / 8.0);
        }

        #[test]
        fn prop_levels_respect_edges(groups in 1usize..6) {
            let g = attention_graph(4, 8, 32, groups);
            let a = analyze(&g).unwrap();
            for (from, outs) in g.edges.iter().enumerate() {
                for &t in outs {
                    prop_assert!(a.levels[from] < a.levels[t]);
                }
            }
            let total: usize = a.level_widths.iter().sum();
            prop_assert_eq!(total, g.len());
        }
    }
}
