//! Operator bundling: merging small operators into their neighbours
//! "to avoid cache thrashing" when throttling parallelism (§1, §4).
//!
//! A node is merged into its unique successor when the pair forms a linear
//! chain (single successor / single predecessor) and at least one of the
//! two is below the cost threshold. Merging a chain never changes the
//! graph's wavefront widths, so the Kahn-derived inter-op parallelism is
//! preserved while per-op launch overheads amortise.

use crate::graph::{OpGraph, OpNode};

/// Result of bundling: the new graph plus, for each original node, the
/// index of the bundled node that absorbed it.
#[derive(Debug, Clone)]
pub struct Bundled {
    pub graph: OpGraph,
    pub mapping: Vec<usize>,
}

/// Bundle linear chains whose members fall below `min_flops`.
pub fn bundle_small_ops(g: &OpGraph, min_flops: f64) -> Bundled {
    let n = g.len();
    let preds = g.predecessors();
    // Union-find-ish absorption: absorb[u] = v means u is merged into v's
    // group. Process nodes in order; a node with exactly one successor
    // whose successor has exactly one predecessor is chainable.
    let mut group = (0..n).collect::<Vec<_>>();

    fn find(group: &mut [usize], mut x: usize) -> usize {
        while group[x] != x {
            group[x] = group[group[x]];
            x = group[x];
        }
        x
    }

    for u in 0..n {
        if g.edges[u].len() != 1 {
            continue;
        }
        let v = g.edges[u][0];
        if preds[v].len() != 1 {
            continue;
        }
        if g.nodes[u].flops >= min_flops && g.nodes[v].flops >= min_flops {
            continue;
        }
        // Merge u's group into v's group.
        let ru = find(&mut group, u);
        let rv = find(&mut group, v);
        if ru != rv {
            group[ru] = rv;
        }
    }

    // Build the bundled graph: one node per root group.
    let root_of: Vec<usize> = (0..n).map(|u| find(&mut group, u)).collect();
    let mut new_index = vec![usize::MAX; n];
    let mut graph = OpGraph::new();
    for &r in &root_of {
        if new_index[r] == usize::MAX {
            let node = &g.nodes[r];
            new_index[r] = graph.add(format!("bundle({})", node.name), node.kind, 0.0, 0.0);
        }
    }
    // Accumulate costs and rebuild edges between distinct groups.
    for (u, r) in root_of.iter().enumerate() {
        let gi = new_index[*r];
        graph.nodes[gi].flops += g.nodes[u].flops;
        graph.nodes[gi].bytes += g.nodes[u].bytes;
    }
    for (u, outs) in g.edges.iter().enumerate() {
        let gu = new_index[root_of[u]];
        for &v in outs {
            let gv = new_index[root_of[v]];
            if gu != gv {
                graph.depend(gu, gv);
            }
        }
    }
    // Restore original names for single-member groups (cosmetic).
    simplify_names(&mut graph.nodes, g, &root_of, &new_index);

    Bundled {
        graph,
        mapping: (0..n).map(|u| new_index[root_of[u]]).collect(),
    }
}

fn simplify_names(
    nodes: &mut [OpNode],
    original: &OpGraph,
    root_of: &[usize],
    new_index: &[usize],
) {
    // Restore the original name when a group has a single member.
    let mut member_count = vec![0usize; nodes.len()];
    for &r in root_of {
        member_count[new_index[r]] += 1;
    }
    for (u, &r) in root_of.iter().enumerate() {
        let gi = new_index[r];
        if member_count[gi] == 1 {
            nodes[gi].name = original.nodes[u].name.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{attention_graph, OpKind};
    use crate::kahn::analyze;

    #[test]
    fn chain_of_small_ops_collapses() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 8.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 8.0);
        let c = g.add("c", OpKind::Elementwise, 1.0, 8.0);
        g.depend(a, b);
        g.depend(b, c);
        let bundled = bundle_small_ops(&g, 10.0);
        assert_eq!(bundled.graph.len(), 1);
        assert_eq!(bundled.graph.nodes[0].flops, 3.0);
        assert_eq!(bundled.graph.nodes[0].bytes, 24.0);
    }

    #[test]
    fn large_ops_not_bundled() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Bmm, 1e9, 8.0);
        let b = g.add("b", OpKind::Bmm, 1e9, 8.0);
        g.depend(a, b);
        let bundled = bundle_small_ops(&g, 10.0);
        assert_eq!(bundled.graph.len(), 2);
        assert_eq!(bundled.graph.nodes[bundled.mapping[0]].name, "a");
    }

    #[test]
    fn bundling_preserves_totals_and_acyclicity() {
        let g = attention_graph(16, 32, 128, 4);
        let bundled = bundle_small_ops(&g, 1e7);
        assert!((bundled.graph.total_flops() - g.total_flops()).abs() < 1e-3);
        assert!((bundled.graph.total_bytes() - g.total_bytes()).abs() < 1e-3);
        assert!(bundled.graph.len() <= g.len());
        assert!(analyze(&bundled.graph).is_some(), "bundling introduced a cycle");
    }

    #[test]
    fn bundling_preserves_max_concurrency() {
        // Merging chains must not reduce usable width (the softmax nodes
        // merge into their bmm neighbours but the head-group strips stay
        // parallel).
        let g = attention_graph(16, 32, 128, 6);
        let before = analyze(&g).unwrap().max_concurrency();
        let bundled = bundle_small_ops(&g, 1e7);
        let after = analyze(&bundled.graph).unwrap().max_concurrency();
        assert_eq!(before, after.max(3).max(before.min(after)), "width shrank: {before} -> {after}");
        assert!(after >= 6, "head-group strips must stay parallel");
    }

    #[test]
    fn fanout_boundary_not_crossed() {
        // A small node with two successors must not merge into either.
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 0.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 0.0);
        let c = g.add("c", OpKind::Elementwise, 1.0, 0.0);
        g.depend(a, b);
        g.depend(a, c);
        let bundled = bundle_small_ops(&g, 10.0);
        assert_eq!(bundled.graph.len(), 3);
    }

    #[test]
    fn mapping_covers_all_nodes() {
        let g = attention_graph(8, 16, 64, 3);
        let bundled = bundle_small_ops(&g, 1e6);
        assert_eq!(bundled.mapping.len(), g.len());
        for &m in &bundled.mapping {
            assert!(m < bundled.graph.len());
        }
    }
}
