//! Metrics: counters, gauges, and log-scale histograms.
//!
//! Counters and gauges are plain atomics; histograms bucket values on a
//! logarithmic scale (4 sub-buckets per octave, ≤ ~9% relative error per
//! bucket) so p50/p95/p99 of quantities spanning decades — span
//! durations, fetch bytes — stay accurate without storing samples.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per factor-of-two (trades memory for quantile accuracy).
const SUB: f64 = 4.0;
/// Bucket 0 represents 2^-40 (~1e-12); the top bucket 2^24 (~1.7e7).
const OFFSET: f64 = 40.0;
const BUCKETS: usize = 256;

/// A lock-free log-scale histogram of non-negative values.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values, as f64 bits (CAS loop).
    sum_bits: AtomicU64,
    /// Min/max as f64 bits — monotonic for non-negative floats.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let idx = ((v.log2() + OFFSET) * SUB).floor();
    idx.clamp(0.0, (BUCKETS - 1) as f64) as usize
}

/// Geometric center of a bucket.
fn bucket_value(idx: usize) -> f64 {
    ((idx as f64 + 0.5) / SUB - OFFSET).exp2()
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Record one value. Negative or non-finite values count into the
    /// lowest bucket (they indicate a caller bug, not a crash).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Approximate quantile `q` in [0, 1]: the geometric center of the
    /// bucket where the cumulative count crosses `q·N`. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // Exclusive nearest-rank: p99 of 100 samples is the 100th value.
        let target = ((q.clamp(0.0, 1.0) * total as f64).floor() as u64 + 1).min(total);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_value(idx);
            }
        }
        bucket_value(BUCKETS - 1)
    }

    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSummary {
            count,
            sum: self.sum(),
            mean: if count == 0 { 0.0 } else { self.sum() / count as f64 },
            min,
            max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Serialisable digest of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// Named counters, gauges and histograms. Registration locks a map;
/// updates on an already-registered handle are atomic.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn intern<T>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
        let mut m = map.lock();
        if let Some(v) = m.get(name) {
            return Arc::clone(v);
        }
        let v = Arc::new(make());
        m.insert(name.to_string(), Arc::clone(&v));
        v
    }

    /// Add `n` to counter `name` (registering it on first use).
    pub fn counter_add(&self, name: &str, n: u64) {
        Self::intern(&self.counters, name, || AtomicU64::new(0)).fetch_add(n, Ordering::Relaxed);
    }

    /// Set gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        Self::intern(&self.gauges, name, || AtomicU64::new(0)).store(v.to_bits(), Ordering::Relaxed);
    }

    /// The histogram `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::intern(&self.histograms, name, Histogram::new)
    }

    /// Record one value into histogram `name`.
    pub fn histogram_record(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// Point-in-time serialisable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_on_known_distribution() {
        let h = Histogram::new();
        // 100 values: 1.0 x90, 10.0 x9, 100.0 x1 — p50=1, p95=10, p99=100.
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..9 {
            h.record(10.0);
        }
        h.record(100.0);
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 280.0).abs() < 1e-9);
        // Bucket centers are within ~9% of the true value.
        let rel = |got: f64, want: f64| (got / want - 1.0).abs();
        assert!(rel(h.quantile(0.50), 1.0) < 0.10, "p50 {}", h.quantile(0.50));
        assert!(rel(h.quantile(0.95), 10.0) < 0.10, "p95 {}", h.quantile(0.95));
        assert!(rel(h.quantile(0.99), 100.0) < 0.10, "p99 {}", h.quantile(0.99));
        let s = h.summary();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 2.8).abs() < 1e-9);
    }

    #[test]
    fn histogram_spans_decades() {
        let h = Histogram::new();
        for v in [1e-9, 1e-6, 1e-3, 1.0, 1e3] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert!(s.min < 2e-9 && s.min > 0.5e-9);
        assert!(s.max > 0.9e3);
        // p50 is the middle sample (1e-3) to bucket accuracy.
        assert!((h.quantile(0.5) / 1e-3 - 1.0).abs() < 0.10);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn degenerate_values_fold_into_lowest_bucket() {
        let h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(0.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.summary().max, 0.0);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let r = MetricsRegistry::new();
        r.counter_add("fetch.bytes", 100);
        r.counter_add("fetch.bytes", 28);
        r.gauge_set("pool.occupancy", 0.75);
        r.gauge_set("pool.occupancy", 0.5); // gauges overwrite
        r.histogram_record("span.s", 2.0);
        r.histogram_record("span.s", 4.0);
        let s = r.snapshot();
        assert_eq!(s.counters["fetch.bytes"], 128);
        assert_eq!(s.gauges["pool.occupancy"], 0.5);
        assert_eq!(s.histograms["span.s"].count, 2);
        assert!((s.histograms["span.s"].sum - 6.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 7);
        r.gauge_set("g", 1.5);
        r.histogram_record("h", 3.0);
        let snap = r.snapshot();
        let v = serde::Serialize::serialize(&snap);
        let back: MetricsSnapshot = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        r.counter_add("n", 1);
                        r.histogram_record("h", 1.0 + (i % 10) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counters["n"], 4000);
        assert_eq!(s.histograms["h"].count, 4000);
        assert!((s.histograms["h"].sum - 4.0 * (1000.0 + 4500.0)).abs() < 1e-6);
    }
}
