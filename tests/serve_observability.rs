//! Serve-path observability on the *real* miniature engine (DESIGN.md
//! §13): the drift audit must hold on the `EngineBackend`, not just on
//! the analytic backend the scheduler was tuned against — the TTFT
//! predictor reads the backend's own cost quotes, so its error must not
//! grow when those quotes come from the engine's offloading plan.
#![allow(clippy::unwrap_used)]

use lm_serve::{
    serve_timeline, synth_traffic, EngineBackend, RequestPhase, ServeBackend, ServeConfig,
    ServeSession,
};
use lm_trace::Tracer;

const SEED: u64 = 7;

/// The documented serve-path TTFT tolerance (DESIGN.md §13): the
/// queueing estimate must land within 35% of the realized mean.
const TTFT_TOLERANCE: f64 = 0.35;

#[test]
fn engine_backend_drift_audit_holds_at_the_default_seed() {
    let backend = EngineBackend::tiny_test(SEED).unwrap();
    // 500 rps puts the tiny engine in the same arrival-saturated regime
    // the default analytic workload runs in (the TtftModel is a queueing
    // estimate: under no load its padded-group prefill quote is
    // deliberately pessimistic, which the tolerance does not cover).
    let traffic = synth_traffic(SEED, 500.0, 16, backend.model());
    let cfg = ServeConfig {
        tracer: Tracer::new(),
        ..ServeConfig::default()
    };
    let (plan, out) = ServeSession::new(&backend)
        .config(cfg)
        .run(traffic)
        .unwrap()
        .into_continuous();
    assert!(!out.responses.is_empty());
    assert!(!out.obs.ttft.is_empty(), "first tokens must be audited");

    let report = out.obs.audit(&plan);
    let ttft = report.metric("ttft_mean_s").unwrap();
    assert!(ttft.predicted > 0.0 && ttft.observed > 0.0, "{ttft:?}");
    let ratio = ttft.ratio.unwrap();
    assert!(
        (ratio - 1.0).abs() <= TTFT_TOLERANCE,
        "engine-path TTFT drift ratio {ratio} exceeds ±{TTFT_TOLERANCE}: {ttft:?}"
    );
    let occ = report.metric("slot_occupancy_mean").unwrap();
    assert!(
        (occ.ratio.unwrap() - 1.0).abs() <= 0.15,
        "engine-path occupancy drift: {occ:?}"
    );
}

#[test]
fn engine_backend_lifecycle_balances_and_exports_a_timeline() {
    let backend = EngineBackend::tiny_test(SEED).unwrap();
    let traffic = synth_traffic(SEED, 4.0, 12, backend.model());
    let (plan, out) = ServeSession::new(&backend).run(traffic).unwrap().into_continuous();

    let count = |phase: RequestPhase| {
        out.obs
            .lifecycle
            .iter()
            .filter(|e| e.phase == phase)
            .count() as u64
    };
    assert_eq!(count(RequestPhase::Admitted), out.stats.admitted);
    assert_eq!(count(RequestPhase::Done), out.stats.completed);
    assert_eq!(count(RequestPhase::Decode), out.generated_tokens);

    let v = serve_timeline(&plan, &out.obs).to_value();
    let events = v["traceEvents"].as_array().unwrap();
    assert!(events
        .iter()
        .any(|e| e["name"].as_str().is_some_and(|n| n.ends_with("[done]"))));
}
