//! A set-associative LRU cache model.
//!
//! Used to reproduce Table 5: the LLC miss counts of the decode-phase
//! workload under default threading versus LM-Offload's parallelism
//! control. Geometry comes from `lm_hardware::CpuSpec` (e.g. the Xeon
//! 6330's 42 MiB, 12-way LLC with 64-byte lines).

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Whether the access is a store.
    pub write: bool,
}

impl Access {
    pub fn load(addr: u64) -> Self {
        Access { addr, write: false }
    }

    pub fn store(addr: u64) -> Self {
        Access { addr, write: true }
    }
}

/// Hit/miss counters, split by access kind like `perf`'s
/// `LLC-load-misses` / `LLC-store-misses` events (Table 5 reports both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub load_hits: u64,
    pub load_misses: u64,
    pub store_hits: u64,
    pub store_misses: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.load_hits + self.load_misses + self.store_hits + self.store_misses
    }

    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }
}

/// A physically-indexed set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_size: u64,
    num_sets: u64,
    ways: usize,
    /// Per set: `ways` slots of (tag, last-use tick); tag == u64::MAX means
    /// invalid.
    slots: Vec<(u64, u64)>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache of `capacity` bytes with the given associativity and
    /// line size. Capacity must be divisible by `ways × line_size`.
    pub fn new(capacity: u64, ways: usize, line_size: u64) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        let set_bytes = ways as u64 * line_size;
        assert!(
            capacity.is_multiple_of(set_bytes) && capacity > 0,
            "capacity {capacity} not divisible by ways*line ({set_bytes})"
        );
        let num_sets = capacity / set_bytes;
        SetAssocCache {
            line_size,
            num_sets,
            ways,
            slots: vec![(u64::MAX, 0); (num_sets as usize) * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Build from an `lm_hardware`-style LLC description.
    pub fn from_llc(capacity: u64, ways: u32, line_size: u32) -> Self {
        SetAssocCache::new(capacity, ways as usize, line_size as u64)
    }

    pub fn capacity(&self) -> u64 {
        self.num_sets * self.ways as u64 * self.line_size
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Simulate one access; returns true on hit.
    pub fn access(&mut self, a: Access) -> bool {
        self.tick += 1;
        let line = a.addr / self.line_size;
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let base = set * self.ways;
        let slots = &mut self.slots[base..base + self.ways];

        // Hit path.
        if let Some(slot) = slots.iter_mut().find(|(t, _)| *t == tag) {
            slot.1 = self.tick;
            match a.write {
                false => self.stats.load_hits += 1,
                true => self.stats.store_hits += 1,
            }
            return true;
        }

        // Miss: fill into LRU victim (write-allocate for stores).
        match a.write {
            false => self.stats.load_misses += 1,
            true => self.stats.store_misses += 1,
        }
        let victim = slots
            .iter_mut()
            .min_by_key(|(_, used)| *used)
            .expect("ways > 0");
        *victim = (tag, self.tick);
        false
    }

    /// Run a whole trace, returning the stats delta it produced.
    pub fn run(&mut self, trace: impl IntoIterator<Item = Access>) -> CacheStats {
        let before = self.stats;
        for a in trace {
            self.access(a);
        }
        CacheStats {
            load_hits: self.stats.load_hits - before.load_hits,
            load_misses: self.stats.load_misses - before.load_misses,
            store_hits: self.stats.store_hits - before.store_hits,
            store_misses: self.stats.store_misses - before.store_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        assert!(!c.access(Access::load(0)));
        assert!(c.access(Access::load(32))); // same line
        assert!(c.access(Access::store(0)));
        let s = c.stats();
        assert_eq!(s.load_misses, 1);
        assert_eq!(s.load_hits, 1);
        assert_eq!(s.store_hits, 1);
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        // 64 KiB cache, 16-way: stream a 32 KiB buffer twice — second pass
        // must be all hits.
        let mut c = SetAssocCache::new(64 * 1024, 16, 64);
        let pass = || (0..32 * 1024 / 64).map(|i| Access::load(i * 64));
        c.run(pass());
        let second = c.run(pass());
        assert_eq!(second.load_misses, 0);
        assert_eq!(second.load_hits, 512);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru() {
        // Classic LRU pathology: cyclic sweep of 2x capacity misses always.
        let mut c = SetAssocCache::new(16 * 1024, 4, 64);
        let lines = 2 * 16 * 1024 / 64;
        let pass = || (0..lines).map(|i| Access::load(i * 64));
        c.run(pass());
        let second = c.run(pass());
        assert_eq!(second.load_hits, 0, "cyclic sweep must thrash LRU");
    }

    #[test]
    fn conflict_misses_within_one_set() {
        // 2-way cache: three lines mapping to the same set conflict.
        let mut c = SetAssocCache::new(8 * 1024, 2, 64);
        let num_sets = 8 * 1024 / (2 * 64); // 64 sets
        let stride = num_sets as u64 * 64;
        for rep in 0..3 {
            for way in 0..3u64 {
                c.access(Access::load(way * stride));
            }
            let _ = rep;
        }
        // 3 lines in a 2-way set with LRU: every access misses.
        assert_eq!(c.stats().load_misses, 9);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = SetAssocCache::new(8 * 1024, 2, 64);
        let stride = (8 * 1024 / (2 * 64)) as u64 * 64;
        c.access(Access::load(0)); // A miss
        c.access(Access::load(stride)); // B miss
        c.access(Access::load(0)); // A hit (refresh)
        c.access(Access::load(2 * stride)); // C miss, evicts B (LRU)
        assert!(c.access(Access::load(0)), "A must still be resident");
        assert!(!c.access(Access::load(stride)), "B was the LRU victim");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_rejected() {
        SetAssocCache::new(1000, 3, 64);
    }

    #[test]
    fn run_returns_delta_not_total() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        c.run((0..8).map(|i| Access::load(i * 64)));
        let d = c.run((0..8).map(|i| Access::load(i * 64)));
        assert_eq!(d.load_hits, 8);
        assert_eq!(d.load_misses, 0);
        assert_eq!(c.stats().load_misses, 8);
    }
}
