//! # lm-parallelism
//!
//! Thread-level parallelism control — the §4 contribution of LM-Offload.
//!
//! - [`graph`]: operator dependency graphs of the attention compute task
//!   (Figure 6);
//! - [`kahn`]: Kahn's algorithm — topological order, wavefront analysis,
//!   the *maximum concurrency level* that fixes inter-op parallelism, and
//!   list-scheduled makespan estimation;
//! - [`scaling`]: the calibrated CPU scaling model (intra-op saturation at
//!   ~8 threads, NUMA penalty across sockets, co-run cache contention —
//!   the shapes of Figure 5);
//! - [`profile`]: offline profiling tables of per-operator times per
//!   thread count (§4.2);
//! - [`bundle`]: small-operator bundling to amortise launch overhead;
//! - [`search`]: Algorithm 3 — the parallelism-setting search with the
//!   five-thread reservation for load/store tasks and volume-proportional
//!   thread assignment;
//! - [`executor`]: a real work-queue executor with explicit inter-op and
//!   intra-op parallelism for running operator graphs on actual hardware.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod bundle;
pub mod executor;
pub mod graph;
pub mod kahn;
pub mod profile;
pub mod scaling;
pub mod search;

pub use bundle::{bundle_small_ops, Bundled};
pub use executor::{burn, split_work, ExecError, Executor};
pub use graph::{attention_block_graph, attention_graph, GraphError, OpGraph, OpKind, OpNode};
pub use kahn::{analyze, find_cycle, makespan, KahnAnalysis};
pub use profile::ProfileTable;
pub use scaling::CpuScalingModel;
pub use search::{
    assign_transfer_threads, estimate_step_time, find_optimal_parallelism,
    transfer_time, try_find_optimal_parallelism, ParallelismPlan, SearchConfig, SearchError,
    TransferTask, NUM_TRANSFER_TASKS,
};
