//! A real task-graph executor with explicit inter-op and intra-op
//! parallelism — the runtime counterpart of the analytic search, used to
//! demonstrate and test the parallelism-control decisions on actual
//! hardware.
//!
//! `inter_op` worker threads pull ready operators from a shared queue
//! (crossbeam channel); each operator may split its own work across
//! `intra_op` threads via [`split_work`]. Dependency tracking uses atomic
//! in-degree counters, so completion of the last predecessor is what
//! publishes a node to the queue — no locks on the hot path.

use crate::graph::OpGraph;
use crate::kahn;
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why an executor could not be built or could not run a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `inter_op` or `intra_op` was zero.
    ZeroParallelism { inter_op: usize, intra_op: usize },
    /// The graph has a cycle; the nodes form a closed dependency walk.
    /// Running it would block forever: the node releasing protocol only
    /// publishes a node once its in-degree drains, which never happens
    /// inside a cycle.
    CyclicGraph { cycle: Vec<usize> },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ZeroParallelism { inter_op, intra_op } => write!(
                f,
                "executor needs positive parallelism (inter_op={inter_op}, intra_op={intra_op})"
            ),
            ExecError::CyclicGraph { cycle } => {
                write!(f, "cyclic graph: ")?;
                for &u in cycle {
                    write!(f, "{u} -> ")?;
                }
                write!(f, "{}", cycle.first().copied().unwrap_or(0))
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Executor configuration: how many operators co-run and how many threads
/// each operator's inner loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    pub inter_op: usize,
    pub intra_op: usize,
}

impl Executor {
    pub fn new(inter_op: usize, intra_op: usize) -> Self {
        assert!(inter_op >= 1, "inter_op must be positive");
        assert!(intra_op >= 1, "intra_op must be positive");
        Executor { inter_op, intra_op }
    }

    /// Fallible constructor for configurations derived from untrusted
    /// input (deserialized plans, sweep generators).
    pub fn try_new(inter_op: usize, intra_op: usize) -> Result<Self, ExecError> {
        if inter_op == 0 || intra_op == 0 {
            return Err(ExecError::ZeroParallelism { inter_op, intra_op });
        }
        Ok(Executor { inter_op, intra_op })
    }

    /// Execute `graph`, calling `work(node_index, intra_op)` for every
    /// node exactly once, respecting dependencies. Returns the completion
    /// order. Panics if the graph is cyclic (nodes would never be
    /// released).
    pub fn run<F>(&self, graph: &OpGraph, work: F) -> Vec<usize>
    where
        F: Fn(usize, usize) + Sync,
    {
        self.run_traced(graph, &lm_trace::Tracer::disabled(), work)
    }

    /// Fallible [`Executor::run`]: a cyclic graph is reported as
    /// [`ExecError::CyclicGraph`] with the offending cycle instead of
    /// wedging the worker pool.
    pub fn try_run<F>(&self, graph: &OpGraph, work: F) -> Result<Vec<usize>, ExecError>
    where
        F: Fn(usize, usize) + Sync,
    {
        self.try_run_traced(graph, &lm_trace::Tracer::disabled(), work)
    }

    /// Like [`Executor::run`], recording one tracer scope per operator,
    /// named after the node. The per-thread trace buffers assign each
    /// worker its own track, so the Perfetto view shows which worker ran
    /// which operator — the executor's thread-assignment picture.
    pub fn run_traced<F>(&self, graph: &OpGraph, tracer: &lm_trace::Tracer, work: F) -> Vec<usize>
    where
        F: Fn(usize, usize) + Sync,
    {
        match self.try_run_traced(graph, tracer, work) {
            Ok(order) => order,
            Err(e) => panic!("cyclic graph: not all nodes can become ready ({e})"),
        }
    }

    /// Fallible [`Executor::run_traced`]. Cycles are rejected *before*
    /// any worker starts: without the pre-check, workers block in
    /// `recv()` forever on a cyclic graph, because the final-node
    /// completion that sends the shutdown sentinel is never reached.
    pub fn try_run_traced<F>(
        &self,
        graph: &OpGraph,
        tracer: &lm_trace::Tracer,
        work: F,
    ) -> Result<Vec<usize>, ExecError>
    where
        F: Fn(usize, usize) + Sync,
    {
        let n = graph.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if kahn::analyze(graph).is_none() {
            let cycle = kahn::find_cycle(graph).unwrap_or_default();
            return Err(ExecError::CyclicGraph { cycle });
        }
        /// Shutdown sentinel: every worker holds a sender while blocked in
        /// `recv()`, so the channel can never close itself — the worker
        /// that completes the final node wakes the others explicitly.
        const POISON: usize = usize::MAX;
        let indeg: Vec<AtomicUsize> = graph
            .in_degrees()
            .into_iter()
            .map(AtomicUsize::new)
            .collect();
        let (tx, rx) = channel::unbounded::<usize>();
        for (i, d) in indeg.iter().enumerate() {
            if d.load(Ordering::Relaxed) == 0 {
                tx.send(i).expect("queue open");
            }
        }
        let completed = AtomicUsize::new(0);
        let order = Mutex::new(Vec::with_capacity(n));

        crossbeam::scope(|scope| {
            for _ in 0..self.inter_op {
                let rx = rx.clone();
                let tx = tx.clone();
                let indeg = &indeg;
                let completed = &completed;
                let order = &order;
                let work = &work;
                scope.spawn(move |_| {
                    while let Ok(u) = rx.recv() {
                        if u == POISON {
                            break;
                        }
                        {
                            let _op = tracer.scope(&graph.nodes[u].name);
                            work(u, self.intra_op);
                        }
                        order.lock().push(u);
                        for &v in &graph.edges[u] {
                            if indeg[v].fetch_sub(1, Ordering::AcqRel) == 1 {
                                tx.send(v).expect("queue open");
                            }
                        }
                        if completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                            // All done: wake every other worker.
                            for _ in 0..self.inter_op {
                                let _ = tx.send(POISON);
                            }
                            break;
                        }
                    }
                });
            }
            drop(tx);
            drop(rx);
        })
        .expect("worker panicked");

        let order = order.into_inner();
        debug_assert_eq!(order.len(), n, "acyclic graph must complete fully");
        Ok(order)
    }
}

/// Split `total` work items across `threads` OS threads, calling
/// `f(range)` on each disjoint chunk — the intra-op parallelism primitive
/// operators use inside [`Executor::run`].
pub fn split_work<F>(total: usize, threads: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    assert!(threads >= 1, "threads must be positive");
    if total == 0 {
        return;
    }
    let threads = threads.min(total);
    let chunk = total.div_ceil(threads);
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let f = &f;
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(total);
            if start < end {
                scope.spawn(move |_| f(start..end));
            }
        }
    })
    .expect("intra-op worker panicked");
}

/// A CPU-burning workload of roughly `flops` floating-point operations,
/// split across `threads` — the synthetic operator body used in executor
/// demonstrations and tests.
pub fn burn(flops: f64, threads: usize) {
    let iters = (flops / 2.0).max(1.0) as usize;
    split_work(iters, threads, |range| {
        let mut acc = 1.0f64;
        for i in range {
            acc = acc.mul_add(1.000_000_1, (i & 7) as f64 * 1e-12);
        }
        std::hint::black_box(acc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{attention_graph, OpKind};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn runs_every_node_once_in_topo_order() {
        let g = attention_graph(8, 16, 64, 4);
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        let order = Executor::new(4, 2).run(&g, |u, _| {
            counts[u].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(order.len(), g.len());
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "node {i}");
        }
        // Completion order must respect dependencies.
        let mut pos = vec![0usize; g.len()];
        for (i, &u) in order.iter().enumerate() {
            pos[u] = i;
        }
        for (from, outs) in g.edges.iter().enumerate() {
            for &to in outs {
                assert!(pos[from] < pos[to], "edge {from}->{to} violated");
            }
        }
    }

    #[test]
    fn single_worker_is_sequential_topo() {
        let g = attention_graph(4, 8, 32, 2);
        let order = Executor::new(1, 1).run(&g, |_, _| {});
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = OpGraph::new();
        assert!(Executor::new(2, 2).run(&g, |_, _| {}).is_empty());
    }

    #[test]
    fn wide_graph_gets_parallel_speedup() {
        // 8 independent nodes of equal work: on a multi-core host, 4
        // workers should be clearly faster than 1. On a single core the
        // speedup is physically impossible, so only correctness and
        // bounded overhead are asserted there.
        let mut g = OpGraph::new();
        for i in 0..8 {
            g.add(format!("n{i}"), OpKind::Bmm, 4e6, 0.0);
        }
        let body = |_u: usize, intra: usize| burn(4e6, intra);

        let t0 = Instant::now();
        let order_serial = Executor::new(1, 1).run(&g, body);
        let serial = t0.elapsed();

        let t1 = Instant::now();
        let order_parallel = Executor::new(4, 1).run(&g, body);
        let parallel = t1.elapsed();

        assert_eq!(order_serial.len(), 8);
        assert_eq!(order_parallel.len(), 8);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores >= 4 {
            assert!(
                parallel.as_secs_f64() < serial.as_secs_f64() * 0.8,
                "serial {serial:?} vs parallel {parallel:?} on {cores} cores"
            );
        } else {
            // Worker-pool overhead must stay modest even without cores
            // to exploit.
            assert!(
                parallel.as_secs_f64() < serial.as_secs_f64() * 2.0,
                "excessive overhead: serial {serial:?} vs parallel {parallel:?}"
            );
        }
    }

    #[test]
    fn split_work_covers_range_disjointly() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        split_work(1000, 7, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn split_work_handles_edge_cases() {
        split_work(0, 4, |_| panic!("no work expected"));
        let hits = AtomicUsize::new(0);
        split_work(3, 10, |r| {
            hits.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "inter_op must be positive")]
    fn zero_workers_rejected() {
        Executor::new(0, 1);
    }

    #[test]
    fn try_new_reports_zero_parallelism() {
        assert_eq!(
            Executor::try_new(0, 3),
            Err(ExecError::ZeroParallelism { inter_op: 0, intra_op: 3 })
        );
        assert_eq!(
            Executor::try_new(2, 0),
            Err(ExecError::ZeroParallelism { inter_op: 2, intra_op: 0 })
        );
        assert!(Executor::try_new(2, 3).is_ok());
    }

    #[test]
    fn cyclic_graph_is_rejected_not_hung() {
        // Before the upfront cycle check, this case deadlocked the worker
        // pool: the shutdown sentinel is only sent after the final node
        // completes, which a cycle prevents.
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 0.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 0.0);
        let c = g.add("c", OpKind::Elementwise, 1.0, 0.0);
        g.depend(a, b);
        g.depend(b, c);
        g.depend(c, b); // b <-> c cycle
        let err = Executor::new(2, 1)
            .try_run(&g, |_, _| {})
            .expect_err("cycle must be rejected");
        match &err {
            ExecError::CyclicGraph { cycle } => {
                // The reported walk is a genuine cycle over existing edges.
                assert!(!cycle.is_empty());
                for w in cycle.windows(2) {
                    assert!(g.edges[w[0]].contains(&w[1]), "{err}");
                }
                let (first, last) = (cycle[0], *cycle.last().unwrap());
                assert!(g.edges[last].contains(&first), "{err}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("cyclic graph"), "{err}");
    }

    #[test]
    #[should_panic(expected = "cyclic graph")]
    fn run_panics_on_cycle() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 0.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 0.0);
        g.depend(a, b);
        g.depend(b, a);
        Executor::new(2, 1).run(&g, |_, _| {});
    }

    #[test]
    fn traced_run_scopes_every_op_with_worker_tracks() {
        let g = attention_graph(4, 8, 32, 2);
        let tracer = lm_trace::Tracer::new();
        let order = Executor::new(3, 1).run_traced(&g, &tracer, |_, intra| burn(1e4, intra));
        assert_eq!(order.len(), g.len());
        let report = tracer.snapshot();
        // One scope per operator, named after its node.
        assert_eq!(report.scopes.len(), g.len());
        let names: std::collections::HashSet<&str> =
            report.scopes.iter().map(|s| s.name.as_str()).collect();
        for node in &g.nodes {
            assert!(names.contains(node.name.as_str()), "missing {}", node.name);
        }
        // Scopes are tagged with the executing worker's track, and no
        // worker runs more ops than exist.
        let tracks: std::collections::HashSet<u32> =
            report.scopes.iter().map(|s| s.track).collect();
        assert!(!tracks.is_empty() && tracks.len() <= 3);
        // Tracing must not change execution semantics.
        let untraced = Executor::new(3, 1).run(&g, |_, _| {});
        assert_eq!(untraced.len(), g.len());
    }
}
