//! Cross-crate integration: the analytic Eq. 1/2 model and the
//! event-driven simulator must agree — the analytic model is what the
//! policy searches optimise, the simulator is what scores deployments, so
//! a drift between them would let a framework game its own evaluator.

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::{presets as models, DType, Workload};
use lm_offload::{quant_aware_provider, QuantCostParams, ThreadFactors};
use lm_sim::{simulate, AttentionPlacement, Policy};

fn agreement(policy: Policy, w: Workload) -> (f64, f64) {
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let provider = quant_aware_provider(
        &platform,
        &model,
        &w,
        policy,
        QuantCostParams::flexgen_kernels(),
        ThreadFactors::Default,
    );
    let analytic = provider.latency(false);
    let report = simulate(&provider, &w, model.num_layers);
    (analytic, report.prefill_time + report.decode_time)
}

fn assert_close(policy: Policy, w: Workload, tol: f64) {
    let (analytic, simulated) = agreement(policy, w);
    let rel = (analytic - simulated).abs() / simulated;
    assert!(
        rel < tol,
        "analytic {analytic:.2}s vs simulated {simulated:.2}s (rel {rel:.2}) for {policy:?}"
    );
}

#[test]
fn agreement_cpu_attention_fp16() {
    assert_close(Policy::flexgen_default(), Workload::new(64, 16, 64, 4), 0.30);
}

#[test]
fn agreement_gpu_attention_fp16() {
    let mut p = Policy::flexgen_default();
    p.attention = AttentionPlacement::Gpu;
    assert_close(p, Workload::new(64, 16, 64, 4), 0.30);
}

#[test]
fn agreement_quantized_kv() {
    let mut p = Policy::flexgen_default();
    p.attention = AttentionPlacement::Gpu;
    p.kv_dtype = DType::Int4;
    p.wg = 0.5;
    assert_close(p, Workload::new(64, 16, 64, 4), 0.30);
}

#[test]
fn agreement_quantized_weights_high_residency() {
    let mut p = Policy::flexgen_default();
    p.attention = AttentionPlacement::Gpu;
    p.weights_dtype = DType::Int4;
    p.kv_dtype = DType::Int4;
    p.wg = 0.9;
    assert_close(p, Workload::new(64, 16, 64, 4), 0.35);
}

#[test]
fn analytic_ranking_predicts_simulated_ranking() {
    // The property the policy search actually relies on: if the analytic
    // model says policy A clearly beats policy B (>20% margin), the
    // simulator agrees on the direction.
    let w = Workload::new(64, 16, 64, 4);
    let mut candidates = vec![Policy::flexgen_default()];
    let mut gpu = Policy::flexgen_default();
    gpu.attention = AttentionPlacement::Gpu;
    candidates.push(gpu);
    let mut gpu_q = gpu;
    gpu_q.kv_dtype = DType::Int4;
    candidates.push(gpu_q);
    let mut gpu_q_wg = gpu_q;
    gpu_q_wg.weights_dtype = DType::Int4;
    gpu_q_wg.wg = 0.8;
    candidates.push(gpu_q_wg);

    let scored: Vec<(f64, f64)> = candidates
        .iter()
        .map(|&p| agreement(p, w))
        .collect();
    for (i, a) in scored.iter().enumerate() {
        for b in scored.iter().skip(i + 1) {
            if a.0 < b.0 * 0.8 {
                assert!(
                    a.1 < b.1,
                    "analytic prefers ({:.2} < {:.2}) but simulator disagrees ({:.2} vs {:.2})",
                    a.0,
                    b.0,
                    a.1,
                    b.1
                );
            }
        }
    }
}

#[test]
fn simulator_throughput_consistent_with_tokens_and_time() {
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::new(64, 8, 32, 2);
    let provider = quant_aware_provider(
        &platform,
        &model,
        &w,
        Policy::flexgen_default(),
        QuantCostParams::flexgen_kernels(),
        ThreadFactors::Default,
    );
    let r = simulate(&provider, &w, model.num_layers);
    let recomputed = r.tokens as f64 / (r.prefill_time + r.decode_time);
    assert!((r.throughput - recomputed).abs() / recomputed < 1e-9);
    assert_eq!(r.tokens, w.tokens_generated());
}
