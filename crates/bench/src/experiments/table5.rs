//! Table 5 — last-level cache misses during decode under default
//! threading versus LM-Offload's parallelism control, on the trace-driven
//! LLC model (the hardware-counter substitution of DESIGN.md §2).

use lm_cachesim::{run_contention, scale_misses, ContentionConfig, ThreadSetting};
use lm_models::{footprint, presets as models, DType, Workload};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    pub setting: String,
    pub load_misses_sim: u64,
    pub store_misses_sim: u64,
    /// Scaled to the full OPT-30B decode working set (the paper counts
    /// misses over the whole run: 10/19 billion default, 6/12 tuned).
    pub load_misses_scaled: u64,
    pub store_misses_scaled: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    pub rows: Vec<Table5Row>,
    pub load_reduction_pct: f64,
    pub store_reduction_pct: f64,
}

/// Run the experiment with the scaled-down LLC geometry (capacity ratios
/// preserved; see `lm_cachesim::ContentionConfig::scaled_default`).
pub fn run() -> Table5 {
    let cfg = ContentionConfig::scaled_default();
    let model = models::opt_30b();
    let w = Workload::parallelism_study();
    // Bytes the full decode touches on the host: KV cache sweeps per
    // token per layer (the dominant CPU-side working set under attention
    // offloading).
    let full_bytes: u64 = (0..w.gen_len)
        .map(|i| DType::F16.bytes_for(footprint::old_kv_cache_elems_at(&model, &w, i)))
        .sum::<u64>()
        * model.num_layers as u64;

    let mut rows = Vec::new();
    for (name, setting) in [
        ("default (56 intra / 112 inter)", ThreadSetting::pytorch_default()),
        ("LM-Offload (16 intra / 12 inter)", ThreadSetting::lm_offload()),
    ] {
        let r = run_contention(&cfg, setting);
        let sim_bytes =
            (cfg.op_read_bytes + cfg.op_write_bytes) * r.streams as u64 * cfg.sweeps as u64;
        rows.push(Table5Row {
            setting: name.to_string(),
            load_misses_sim: r.stats.load_misses,
            store_misses_sim: r.stats.store_misses,
            load_misses_scaled: scale_misses(r.stats.load_misses, sim_bytes, full_bytes),
            store_misses_scaled: scale_misses(r.stats.store_misses, sim_bytes, full_bytes),
        });
    }
    // Reductions compare the per-byte-normalised (scaled) counts: the two
    // settings simulate different stream counts, so raw counts are not
    // directly comparable — the scaled values are misses over the *same*
    // full decode workload.
    let (dl, ds) = (rows[0].load_misses_scaled, rows[0].store_misses_scaled);
    let (tl, ts) = (rows[1].load_misses_scaled, rows[1].store_misses_scaled);
    Table5 {
        rows,
        load_reduction_pct: (1.0 - tl as f64 / dl as f64) * 100.0,
        store_reduction_pct: (1.0 - ts as f64 / ds as f64) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_control_reduces_misses() {
        // Paper: ~38-40% reduction in both load and store misses.
        let t = run();
        assert!(
            t.load_reduction_pct > 15.0,
            "load reduction {:.0}%",
            t.load_reduction_pct
        );
        assert!(
            t.store_reduction_pct > 15.0,
            "store reduction {:.0}%",
            t.store_reduction_pct
        );
    }

    #[test]
    fn scaled_misses_are_billions_scale() {
        // Table 5's magnitudes are billions; the scaled estimates should
        // land within a couple of orders of magnitude.
        let t = run();
        for r in &t.rows {
            assert!(
                r.load_misses_scaled > 100_000_000,
                "{}: {}",
                r.setting,
                r.load_misses_scaled
            );
        }
    }

    #[test]
    fn default_row_has_more_misses() {
        let t = run();
        assert!(t.rows[0].load_misses_scaled > t.rows[1].load_misses_scaled);
        assert!(t.rows[0].store_misses_scaled > t.rows[1].store_misses_scaled);
    }

    #[test]
    fn reduction_band_near_paper() {
        // Paper: 38-40%. Accept a 25-75% band on the per-byte-normalised
        // reduction (the trace model is scaled geometry, not the Xeon).
        let t = run();
        assert!(
            (25.0..=75.0).contains(&t.load_reduction_pct),
            "load reduction {:.0}%",
            t.load_reduction_pct
        );
    }
}
