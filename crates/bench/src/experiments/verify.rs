//! `repro verify` — exhaustive bounded verification (DESIGN.md §15):
//! the `lm-verify` planner-space sweep proves lint/ground-truth
//! consistency over the whole bounded lattice, the protocol model
//! checker explores the paged-KV and scheduler state machines under a
//! CHESS preemption bound, and the run self-calibrates by seeding a
//! known defect (one over-granted page per admission) that MUST come
//! back as an `LMA291` witness. Gates, all deterministic:
//!
//! 1. the sweep clears its config floor with no degenerate axis
//!    (`LMA290` clean) and **zero** unsoundness witnesses on the
//!    shipped planner (`LMA291` clean);
//! 2. the seeded mutation IS caught (the instrument detects the defect
//!    class it exists for);
//! 3. both protocol explorations finish their bounded trees untruncated,
//!    violate no invariant, and exercise every declared transition
//!    (`LMA292` clean), with at least [`MIN_INTERLEAVINGS`] total
//!    interleavings;
//! 4. zero-cost-off: the virtual-clock serve throughput recomputed here
//!    equals the tracked `BENCH_serve.json` snapshot — verification
//!    instrumentation must cost the serve path nothing.
//!
//! `repro verify [--sweep quick|full]` writes `results/verify.json` and
//! exits non-zero when any gate fails; `scripts/verify.sh` additionally
//! byte-compares the artifact across two runs.

use lm_analyze::{lint_verify, Diagnostic, UnsoundnessWitness};
use lm_serve::{synth_traffic, AnalyticBackend, ServeBackend, ServeSession};
use lm_verify::{
    build_probe, check_kvpool_protocol, check_scheduler_protocol, run_sweep, Mutation,
    ProtocolReport, SweepDepth, CONFIGS_FLOOR,
};
use serde::{Deserialize, Serialize};

/// Floor on total explored interleavings across both protocol machines.
pub const MIN_INTERLEAVINGS: u64 = 10_000;

/// Exploration bounds of the lane: preemption bound 3 lands ~28k
/// interleavings across the two machines in seconds; bound 2 (the unit
/// suites) would fall short of [`MIN_INTERLEAVINGS`].
pub const PREEMPTION_BOUND: usize = 3;
pub const MAX_ITERATIONS: usize = 200_000;

/// Relative tolerance for the zero-cost-off throughput comparison. The
/// quantity is virtual-clock deterministic, so the only slack granted is
/// float formatting round-trip noise.
pub const ZERO_COST_REL_TOL: f64 = 1e-9;

/// The zero-cost-off verdict: verification hooks must not change the
/// serve path's deterministic virtual throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZeroCostCheck {
    /// `virtual_tokens_per_s` from the tracked `BENCH_serve.json`
    /// snapshot; `None` when no snapshot exists yet (pass — nothing to
    /// regress against).
    pub snapshot_tokens_per_s: Option<f64>,
    /// The same quantity recomputed by this run.
    pub measured_tokens_per_s: f64,
    /// |measured - snapshot| / snapshot, when a snapshot exists.
    pub rel_delta: Option<f64>,
    pub ok: bool,
}

/// Everything `repro verify` writes to `results/verify.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifyReport {
    pub sweep_depth: String,
    /// `(axis, distinct values)` of the lattice.
    pub axes: Vec<(String, u64)>,
    pub configs_explored: u64,
    pub configs_floor: u64,
    /// Points where verdict and ground truth agreed.
    pub consistent: u64,
    /// Points the lints rejected although every invariant held.
    pub incompleteness: u64,
    /// Lint-unsoundness witnesses on the shipped planner (gated zero).
    pub unsoundness: Vec<UnsoundnessWitness>,
    /// Witnesses produced by the seeded over-grant mutation (gated > 0).
    pub mutation_witnesses: u64,
    pub mutation_caught: bool,
    /// One entry per protocol state machine explored.
    pub protocols: Vec<ProtocolReport>,
    pub interleavings_total: u64,
    pub interleavings_floor: u64,
    /// `LMA29x` verdict over the assembled probe (gated clean).
    pub lint_errors: usize,
    pub lint_warnings: usize,
    pub diagnostics: Vec<Diagnostic>,
    /// The mutated run's probe must trip `LMA291`.
    pub mutated_lint_has_lma291: bool,
    pub zero_cost: ZeroCostCheck,
    pub verify_ok: bool,
}

fn lane_opts() -> loom::Options {
    loom::Options {
        preemption_bound: PREEMPTION_BOUND,
        max_iterations: MAX_ITERATIONS,
    }
}

/// Recompute the deterministic serve throughput and compare it against
/// the tracked snapshot (read from `bench_serve_json`, normally the
/// repo-root `BENCH_serve.json`).
fn zero_cost_check(bench_serve_json: &str) -> ZeroCostCheck {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(7, 4.0, 32, backend.model());
    let measured = match ServeSession::new(&backend).run(traffic) {
        Ok(r) => r.outcome.tokens_per_s(),
        Err(_) => {
            return ZeroCostCheck {
                snapshot_tokens_per_s: None,
                measured_tokens_per_s: 0.0,
                rel_delta: None,
                ok: false,
            }
        }
    };
    let snapshot = std::fs::read_to_string(bench_serve_json)
        .ok()
        .and_then(|json| serde_json::from_str::<Vec<crate::perf::BenchRow>>(&json).ok())
        .and_then(|rows| {
            rows.iter()
                .find(|r| {
                    r.bench == "serve/continuous/32req" && r.metric == "virtual_tokens_per_s"
                })
                .map(|r| r.value)
        });
    match snapshot {
        Some(snap) if snap > 0.0 => {
            let rel = (measured - snap).abs() / snap;
            ZeroCostCheck {
                snapshot_tokens_per_s: Some(snap),
                measured_tokens_per_s: measured,
                rel_delta: Some(rel),
                ok: rel <= ZERO_COST_REL_TOL,
            }
        }
        _ => ZeroCostCheck {
            snapshot_tokens_per_s: None,
            measured_tokens_per_s: measured,
            rel_delta: None,
            ok: true,
        },
    }
}

/// Run the whole verification lane at `depth`.
pub fn run(depth: SweepDepth, bench_serve_json: &str) -> VerifyReport {
    // Clean sweep: the shipped planner against executable ground truth.
    let sweep = run_sweep(depth, Mutation::None);
    // Mutated sweep: the instrument must catch the seeded over-grant.
    let mutated = run_sweep(depth, Mutation::OvergrantPage);

    let protocols = vec![
        check_kvpool_protocol(lane_opts()),
        check_scheduler_protocol(lane_opts()),
    ];
    let interleavings_total: u64 = protocols.iter().map(|p| p.interleavings).sum();

    let probe = build_probe(&sweep, &protocols);
    let report = lint_verify(&probe);

    let mutated_probe = build_probe(&mutated, &protocols);
    let mutated_report = lint_verify(&mutated_probe);
    let mutated_lint_has_lma291 =
        mutated_report.has(lm_analyze::LintCode::Lma291LintUnsoundnessWitness);

    let zero_cost = zero_cost_check(bench_serve_json);

    let protocols_ok = protocols
        .iter()
        .all(|p| p.passed() && p.declared.iter().all(|t| p.exercised.contains(t)));
    let mutation_caught = !mutated.unsoundness.is_empty() && mutated_lint_has_lma291;
    let verify_ok = report.is_clean()
        && sweep.unsoundness.is_empty()
        && sweep.configs >= CONFIGS_FLOOR
        && mutation_caught
        && protocols_ok
        && interleavings_total >= MIN_INTERLEAVINGS
        && zero_cost.ok;

    VerifyReport {
        sweep_depth: match depth {
            SweepDepth::Quick => "quick".to_string(),
            SweepDepth::Full => "full".to_string(),
        },
        axes: sweep.axes.clone(),
        configs_explored: sweep.configs,
        configs_floor: CONFIGS_FLOOR,
        consistent: sweep.consistent,
        incompleteness: sweep.incompleteness,
        unsoundness: sweep.unsoundness.clone(),
        mutation_witnesses: mutated.unsoundness.len() as u64,
        mutation_caught,
        protocols,
        interleavings_total,
        interleavings_floor: MIN_INTERLEAVINGS,
        lint_errors: report.error_count(),
        lint_warnings: report.warning_count(),
        diagnostics: report.diagnostics,
        mutated_lint_has_lma291,
        zero_cost,
        verify_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lane_passes_every_gate() {
        let r = run(SweepDepth::Quick, "BENCH_serve.json");
        assert!(
            r.verify_ok,
            "gates: lint_errors={} unsoundness={:?} mutation_caught={} \
             interleavings={} zero_cost={:?}",
            r.lint_errors, r.unsoundness, r.mutation_caught, r.interleavings_total, r.zero_cost
        );
        assert!(r.configs_explored >= 200);
        assert!(r.interleavings_total >= MIN_INTERLEAVINGS);
        assert!(r.mutation_witnesses > 0);
    }

    #[test]
    fn report_is_byte_deterministic() {
        let a = serde_json::to_string(&run(SweepDepth::Quick, "BENCH_serve.json")).unwrap();
        let b = serde_json::to_string(&run(SweepDepth::Quick, "BENCH_serve.json")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_snapshot_is_a_pass_not_a_crash() {
        let z = zero_cost_check("/nonexistent/BENCH_serve.json");
        assert!(z.ok);
        assert!(z.snapshot_tokens_per_s.is_none());
        assert!(z.measured_tokens_per_s > 0.0);
    }
}
