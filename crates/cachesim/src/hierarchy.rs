//! A two-level cache hierarchy: private L2s in front of the shared LLC.
//!
//! The Table 5 experiment models the LLC alone; this refinement lets the
//! contention study separate the traffic the L2s absorb (per-operator
//! temporal reuse) from the traffic that actually reaches — and thrashes —
//! the shared level, which is where the thread-setting effect lives.

use crate::cache::{Access, CacheStats, SetAssocCache};

/// Private-L2s + shared-LLC hierarchy. Accesses are tagged with the core
/// (stream) issuing them; each core filters through its own L2 and only
/// misses proceed to the LLC.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l2s: Vec<SetAssocCache>,
    llc: SetAssocCache,
}

impl Hierarchy {
    /// Build `cores` private L2s of `l2_capacity` bytes each in front of
    /// one LLC.
    pub fn new(
        cores: usize,
        l2_capacity: u64,
        l2_ways: usize,
        llc_capacity: u64,
        llc_ways: usize,
        line_size: u64,
    ) -> Self {
        assert!(cores > 0, "need at least one core");
        Hierarchy {
            l2s: (0..cores)
                .map(|_| SetAssocCache::new(l2_capacity, l2_ways, line_size))
                .collect(),
            llc: SetAssocCache::new(llc_capacity, llc_ways, line_size),
        }
    }

    pub fn cores(&self) -> usize {
        self.l2s.len()
    }

    /// Simulate one access from `core`; returns the level that hit
    /// (`Some(1)` = L2, `Some(2)` = LLC, `None` = memory).
    pub fn access(&mut self, core: usize, a: Access) -> Option<u8> {
        let idx = core % self.l2s.len();
        let l2 = &mut self.l2s[idx];
        if l2.access(a) {
            return Some(1);
        }
        if self.llc.access(a) {
            return Some(2);
        }
        None
    }

    /// Run a trace of `(core, access)` pairs.
    pub fn run(&mut self, trace: impl IntoIterator<Item = (usize, Access)>) {
        for (core, a) in trace {
            self.access(core, a);
        }
    }

    /// Aggregate L2 statistics across cores.
    pub fn l2_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for l2 in &self.l2s {
            let s = l2.stats();
            total.load_hits += s.load_hits;
            total.load_misses += s.load_misses;
            total.store_hits += s.store_hits;
            total.store_misses += s.store_misses;
        }
        total
    }

    /// LLC statistics (accesses here are L2 misses only).
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Misses that went all the way to memory.
    pub fn memory_accesses(&self) -> u64 {
        self.llc.stats().misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpStream;

    fn hierarchy() -> Hierarchy {
        // 4 cores x 64 KiB L2 (8-way), 1 MiB LLC (16-way), 64 B lines.
        Hierarchy::new(4, 64 << 10, 8, 1 << 20, 16, 64)
    }

    #[test]
    fn l2_filters_temporal_reuse() {
        // A stream that fits its private L2: after the cold pass, the LLC
        // sees no further traffic.
        let mut h = hierarchy();
        let stream = OpStream {
            base: 0,
            read_bytes: 32 << 10,
            write_bytes: 0,
            sweeps: 3,
            line: 64,
        };
        h.run(stream.trace().into_iter().map(|a| (0usize, a)));
        let llc = h.llc_stats();
        let lines = (32 << 10) / 64;
        assert_eq!(llc.accesses(), lines, "LLC must see only the cold pass");
        let l2 = h.l2_stats();
        assert_eq!(l2.load_hits, 2 * lines, "two warm sweeps hit in L2");
    }

    #[test]
    fn l2_overflow_reaches_llc_and_hits_there() {
        // A 256 KiB working set spills the 64 KiB L2 but fits the 1 MiB
        // LLC: the second sweep misses L2 (cyclic LRU) yet hits LLC.
        let mut h = hierarchy();
        let stream = OpStream {
            base: 0,
            read_bytes: 256 << 10,
            write_bytes: 0,
            sweeps: 2,
            line: 64,
        };
        h.run(stream.trace().into_iter().map(|a| (1usize, a)));
        let llc = h.llc_stats();
        let lines = (256 << 10) / 64;
        assert_eq!(llc.load_misses, lines, "cold pass misses everywhere");
        assert_eq!(llc.load_hits, lines, "warm pass hits the LLC");
    }

    #[test]
    fn private_l2s_do_not_share() {
        // The same addresses from two different cores: each core pays its
        // own L2 cold misses, but the second core hits the shared LLC.
        let mut h = hierarchy();
        let stream = OpStream {
            base: 0,
            read_bytes: 16 << 10,
            write_bytes: 0,
            sweeps: 1,
            line: 64,
        };
        let lines = (16 << 10) / 64;
        h.run(stream.trace().into_iter().map(|a| (0usize, a)));
        h.run(stream.trace().into_iter().map(|a| (1usize, a)));
        assert_eq!(h.l2_stats().load_misses, 2 * lines, "both cores cold in L2");
        assert_eq!(h.llc_stats().load_hits, lines, "core 1 hits what core 0 filled");
        assert_eq!(h.memory_accesses(), lines);
    }

    #[test]
    fn contention_lives_at_the_shared_level() {
        // Eight streams each fitting their L2 but jointly exceeding the
        // LLC: L2 hit rates stay high while the LLC thrashes — the
        // separation that justifies modelling the thread-setting effect
        // at the shared level (Table 5).
        let mut h = Hierarchy::new(8, 64 << 10, 8, 256 << 10, 16, 64);
        let traces: Vec<Vec<Access>> = (0..8u64)
            .map(|i| {
                OpStream {
                    base: i << 30,
                    read_bytes: 48 << 10,
                    write_bytes: 0,
                    sweeps: 3,
                    line: 64,
                }
                .trace()
            })
            .collect();
        // Interleave line-by-line across cores.
        let max_len = traces.iter().map(Vec::len).max().unwrap();
        for idx in 0..max_len {
            for (core, t) in traces.iter().enumerate() {
                if let Some(&a) = t.get(idx) {
                    h.access(core, a);
                }
            }
        }
        let l2_rate = 1.0 - h.l2_stats().miss_rate();
        assert!(l2_rate > 0.6, "L2s absorb the reuse: hit rate {l2_rate}");
        // 8 x 48 KiB = 384 KiB working set vs 256 KiB LLC.
        let llc = h.llc_stats();
        assert!(
            llc.miss_rate() > 0.9,
            "shared level must thrash: {}",
            llc.miss_rate()
        );
    }

    #[test]
    fn core_ids_wrap_safely() {
        let mut h = hierarchy();
        assert!(h.access(17, Access::load(0)).is_none()); // 17 % 4 = core 1
        assert_eq!(h.cores(), 4);
        assert_eq!(h.l2_stats().load_misses, 1);
    }
}
