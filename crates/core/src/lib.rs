//! # lm-offload
//!
//! LM-Offload: performance model-guided generative inference of large
//! language models with parallelism control — the paper's primary
//! contribution, implemented over the `lm-sim`/`lm-parallelism`
//! substrates.
//!
//! - [`quant_model`]: the quantization performance models of §3.2
//!   (Eq. 12-24) with per-phase rates and kernel-quality presets;
//! - [`provider`]: the quantization-aware cost provider folding Eq. 3-7
//!   into the six decode tasks — the ground truth every framework's
//!   policy is simulated under;
//! - [`traffic`]: per-token interconnect traffic accounting (Table 1);
//! - [`advisor`]: the three "how to use the models" decision scenarios;
//! - [`degrade`]: model-guided graceful degradation — on sustained pool
//!   pressure or bandwidth drops, re-score a fallback ladder against the
//!   degraded platform and continue generation at the policy the model
//!   ranks fastest among the feasible ones;
//! - [`policy_search`]: LM-Offload's quantization-aware policy search
//!   over the extended (4-bit weights/KV) space;
//! - [`controller`]: Algorithm 3 integration — building the attention
//!   dependency graph for a deployment and deriving its thread plan;
//! - [`engine`]: end-to-end framework runs (search → simulate) for
//!   FlexGen, ZeRO-Inference and LM-Offload, single- and multi-GPU;
//! - [`report`]: Table 3 rows, normalisation, speedup summaries;
//! - [`whatif`]: sensitivity sweeps over hardware axes, re-searching the
//!   policy at every point — the deployment-planning payoff of having
//!   analytical models.
//!
//! ```
//! use lm_hardware::presets;
//! use lm_models::{presets as models, Workload};
//! use lm_offload::{Advisor, QuantCostParams};
//! use lm_sim::{AttentionPlacement, Policy};
//!
//! // Ask §3.2's second question: is KV-cache quantization beneficial for
//! // OPT-30B with GPU attention on the paper's A100 platform?
//! let advisor = Advisor::new(
//!     &presets::single_gpu_a100(),
//!     &models::opt_30b(),
//!     &Workload::motivation(),
//!     QuantCostParams::lm_offload_kernels(),
//! );
//! let mut base = Policy::flexgen_default();
//! base.attention = AttentionPlacement::Gpu;
//! assert!(advisor.kv_quantization(base).beneficial);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod advisor;
pub mod controller;
pub mod degrade;
pub mod engine;
pub mod policy_search;
pub mod provider;
pub mod quant_model;
pub mod report;
pub mod traffic;
pub mod whatif;

pub use advisor::{Advisor, Verdict};
pub use controller::{derive_plan, transfer_tasks, try_derive_plan, ControllerOutput, DEFAULT_HEAD_GROUPS};
pub use degrade::{
    engine_options_for_policy, generate_with_degradation, DegradationController,
    DegradationTrigger, DegradedGeneration, PolicySwitch, ServeDegradeLadder,
};
pub use engine::{run_framework, run_pipeline, EngineConfig, Framework, FrameworkRun};
pub use policy_search::{lm_offload_evaluator, lm_offload_search, lm_offload_search_in_space};
pub use provider::{quant_aware_provider, ThreadFactors};
pub use quant_model::{QuantCostParams, QuantModel};
pub use report::{normalise, speedup_over, FaultReport, Speedup, Table3Row};
pub use traffic::{per_token_traffic, TokenTraffic};
pub use whatif::{sweep as whatif_sweep, Axis, WhatIfCurve, WhatIfPoint};

/// The unified serving front door (DESIGN.md §16), re-exported so
/// deployments that depend on the root crate reach the serve API
/// without naming `lm-serve` directly.
pub use lm_serve::{AsyncConfig, ServeMode, ServeRun, ServeSession, TokenStreams};
