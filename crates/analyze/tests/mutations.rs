//! Mutation coverage: every stable lint code has a seeded defect that
//! provably fires it — the analyzer's own regression harness. Each test
//! starts from a known-clean artifact (shipped graph, searched plan,
//! default policy, live model probe), injects exactly one defect, and
//! asserts the expected `LMAnnn` code appears.

#![allow(clippy::unwrap_used)]

use lm_analyze::{
    analyze_deployment, lint_bundles, lint_graph, lint_model, lint_obs, lint_paging, lint_plan,
    lint_async, lint_policy, lint_serve, lint_slo, lint_verify, AsyncProbe, Deployment, LintCode,
    ModelProbe, ObsProbe, PagingProbe, Report, ServeProbe, SloProbe, UnsoundnessWitness,
    VerifyProbe,
};
use lm_hardware::{presets, Platform};
use lm_models::{presets as models, DType, ModelConfig, Workload};
use lm_parallelism::{
    attention_graph, try_find_optimal_parallelism, CpuScalingModel, OpGraph, OpKind,
    ParallelismPlan, ProfileTable, SearchConfig, TransferTask,
};
use lm_sim::{AttentionPlacement, Policy};

struct Fixture {
    platform: Platform,
    model: ModelConfig,
    workload: Workload,
    policy: Policy,
    graph: OpGraph,
    cfg: SearchConfig,
    plan: ParallelismPlan,
    transfers: Vec<TransferTask>,
}

fn fixture() -> Fixture {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let workload = Workload::parallelism_study();
    let policy = Policy::flexgen_default();
    let graph = attention_graph(
        workload.block_size(),
        workload.prompt_len + workload.gen_len / 2,
        model.hidden,
        7,
    );
    let scaling = CpuScalingModel::from_cpu(&platform.cpu);
    let profile = ProfileTable::synthesize(&graph, &scaling, 20e9, 12e9, platform.cpu.total_threads());
    let cfg = SearchConfig::for_platform(&platform);
    let transfers = vec![
        TransferTask { name: "load_weight".into(), bytes: 550_000_000 },
        TransferTask { name: "load_cache".into(), bytes: 0 },
        TransferTask { name: "load_activation".into(), bytes: 9_000_000 },
        TransferTask { name: "store_cache".into(), bytes: 18_000_000 },
        TransferTask { name: "store_activation".into(), bytes: 9_000_000 },
    ];
    let plan = try_find_optimal_parallelism(&graph, &profile, &scaling, &cfg, &transfers).unwrap();
    Fixture {
        platform,
        model,
        workload,
        policy,
        graph,
        cfg,
        plan,
        transfers,
    }
}

fn probe(f: &Fixture) -> ModelProbe {
    ModelProbe::sample(&f.platform, &f.model, &f.workload, &f.policy, 4)
}

/// The single mutated code must appear; the unmutated fixture must not
/// produce it (proving the test observes the mutation, not noise).
fn assert_fires(clean: &Report, mutated: &Report, code: LintCode) {
    assert!(
        !clean.has(code),
        "{} already present before mutation:\n{clean}",
        code.as_str()
    );
    assert!(
        mutated.has(code),
        "{} did not fire on the seeded defect:\n{mutated}",
        code.as_str()
    );
}

#[test]
fn baseline_deployment_is_clean() {
    let f = fixture();
    let report = analyze_deployment(&Deployment {
        platform: &f.platform,
        model: &f.model,
        workload: &f.workload,
        policy: &f.policy,
        graph: &f.graph,
        cfg: &f.cfg,
        plan: &f.plan,
        transfers: &f.transfers,
        bundle_min_flops: 1e7,
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn lma001_back_edge_makes_cycle() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    let last = g.len() - 1;
    g.depend(last, 0);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma001CyclicGraph);
}

#[test]
fn lma002_isolated_node() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    g.add("stray", OpKind::Elementwise, 1.0, 1.0);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma002OrphanNode);
}

#[test]
fn lma003_duplicate_edge() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    // The builder API deduplicates; a deserialized graph may not.
    let to = g.edges[0][0];
    g.edges[0].push(to);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma003DuplicateEdge);
}

#[test]
fn lma004_zero_cost_compute_node() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    let dead = g.add("dead_bmm", OpKind::Bmm, 0.0, 0.0);
    let last = g.len() - 2;
    g.depend(0, dead);
    g.depend(dead, last);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma004ZeroCostNode);
}

#[test]
fn lma005_edge_out_of_bounds() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    let n = g.len();
    g.edges[0].push(n + 3);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma005EdgeOutOfBounds);
}

#[test]
fn lma006_self_edge() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    g.edges[2].push(2);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma006SelfEdge);
}

#[test]
fn lma007_transfer_in_compute_wavefront() {
    let f = fixture();
    let clean = lint_graph(&f.graph);
    let mut g = f.graph.clone();
    // kv_concat is node 3; its consumers (the per-group BMMs) form the
    // next wavefront. A transfer hanging off the same producer lands in
    // that compute wavefront.
    let t = g.add("stage_copy", OpKind::Transfer, 0.0, 1e6);
    g.depend(3, t);
    let last = g.len() - 2;
    g.depend(t, last);
    assert_fires(&clean, &lint_graph(&g), LintCode::Lma007TransferOffBoundary);
}

#[test]
fn lma101_inter_op_beyond_width() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.inter_op_compute += 30;
    plan.inter_op_total += 30;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma101InterOpExceedsWidth);
}

#[test]
fn lma102_thread_budget_blown() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.intra_op_compute = f.cfg.max_threads;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma102ThreadBudgetExceeded);
}

#[test]
fn lma103_truncated_transfer_vector() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.transfer_threads.pop();
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma103WrongTransferVector);
}

#[test]
fn lma104_starved_transfer_task() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.transfer_threads[3] = 0;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma104ZeroTransferThreads);
}

#[test]
fn lma105_inverted_transfer_grant() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    // load_weight moves by far the most bytes; hand it the minimum while
    // a small task keeps a large grant.
    plan.transfer_threads[0] = 1;
    plan.transfer_threads[2] = 8;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma105DisproportionalTransfer);
}

#[test]
fn lma106_total_bookkeeping_broken() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.inter_op_total += 1;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma106InterOpTotalMismatch);
}

#[test]
fn lma107_step_below_compute() {
    let f = fixture();
    let clean = lint_plan(&f.plan, &f.graph, &f.cfg, &f.transfers);
    let mut plan = f.plan.clone();
    plan.est_step_time = plan.est_compute_time * 0.5;
    let r = lint_plan(&plan, &f.graph, &f.cfg, &f.transfers);
    assert_fires(&clean, &r, LintCode::Lma107StepBelowCompute);
}

#[test]
fn lma108_invalid_policy_fraction() {
    let f = fixture();
    let clean = lint_policy(&f.policy, &f.model, &f.workload, &f.platform);
    let mut policy = f.policy;
    policy.wg = 1.5;
    let r = lint_policy(&policy, &f.model, &f.workload, &f.platform);
    assert_fires(&clean, &r, LintCode::Lma108InvalidPolicy);
}

#[test]
fn lma109_footprint_over_capacity() {
    let f = fixture();
    let clean = lint_policy(&f.policy, &f.model, &f.workload, &f.platform);
    let all_gpu = Policy {
        wg: 1.0,
        cg: 1.0,
        hg: 1.0,
        weights_dtype: DType::F16,
        kv_dtype: DType::F16,
        attention: AttentionPlacement::Gpu,
    };
    let r = lint_policy(&all_gpu, &f.model, &Workload::motivation(), &f.platform);
    assert_fires(&clean, &r, LintCode::Lma109CapacityExceeded);
}

#[test]
fn lma110_bundle_blows_the_llc() {
    let f = fixture();
    // A chain of ops each holding 70% of the LLC: left unbundled they
    // stream through the cache one at a time, but an over-eager bundling
    // threshold merges them into one cache-thrashing super-operator.
    let mut g = OpGraph::new();
    let llc = f.platform.cpu.llc_bytes as f64;
    let a = g.add("tiny_a", OpKind::Elementwise, 1.0, llc * 0.7);
    let b = g.add("tiny_b", OpKind::Elementwise, 1.0, llc * 0.7);
    g.depend(a, b);
    let clean = lint_bundles(&g, 0.5, &f.platform); // below both: no merge
    let r = lint_bundles(&g, 1e7, &f.platform); // merges the chain
    assert_fires(&clean, &r, LintCode::Lma110BundleExceedsCache);
}

#[test]
fn lma201_millisecond_units_slip() {
    let f = fixture();
    let mut p = probe(&f);
    let clean = lint_model(&probe(&f));
    p.load_weight_time /= 1000.0;
    assert_fires(&clean, &lint_model(&p), LintCode::Lma201DimensionalMismatch);
}

#[test]
fn lma202_tgen_not_the_max() {
    let f = fixture();
    let clean = lint_model(&probe(&f));
    let mut p = probe(&f);
    p.t_gen *= 0.5;
    assert_fires(&clean, &lint_model(&p), LintCode::Lma202TgenNotMax);
}

#[test]
fn lma203_quantized_footprint_grew() {
    let f = fixture();
    let clean = lint_model(&probe(&f));
    let mut p = probe(&f);
    p.weights_at_rest_bytes = p.weights_f16_bytes * 2.0;
    assert_fires(&clean, &lint_model(&p), LintCode::Lma203QuantizedLargerThanF16);
}

#[test]
fn lma204_nan_in_probe() {
    let f = fixture();
    let clean = lint_model(&probe(&f));
    let mut p = probe(&f);
    p.compute_cpu_time = f64::NAN;
    assert_fires(&clean, &lint_model(&p), LintCode::Lma204NonFiniteQuantity);
}

fn serve_probe() -> ServeProbe {
    ServeProbe {
        slots: 6,
        kv_bytes_per_slot: 4 << 20,
        kv_pool_bytes: 32 << 20,
        block_size: 6,
        kahn_width: 6,
    }
}

#[test]
fn lma250_slots_oversubscribe_pool() {
    let clean = lint_serve(&serve_probe());
    let mut p = serve_probe();
    p.slots = 9;
    assert_fires(&clean, &lint_serve(&p), LintCode::Lma250SlotsExceedPool);
}

#[test]
fn lma251_block_beyond_kahn_width() {
    let clean = lint_serve(&serve_probe());
    let mut p = serve_probe();
    p.kahn_width = 3;
    assert_fires(&clean, &lint_serve(&p), LintCode::Lma251BlockExceedsWidth);
}

#[test]
fn lma252_pool_left_idle() {
    let clean = lint_serve(&serve_probe());
    let mut p = serve_probe();
    p.slots = 2;
    p.block_size = 2;
    assert_fires(&clean, &lint_serve(&p), LintCode::Lma252SlotsUnderutilizePool);
}

fn slo_probe() -> SloProbe {
    SloProbe {
        ttft_p99_slo_s: 300.0,
        floor_ttft_s: 20.0,
        slots: 8,
        enforce: true,
        preempt: true,
        shed: true,
        degrade_rungs: 4,
    }
}

#[test]
fn lma260_objective_below_the_floor() {
    let clean = lint_slo(&slo_probe());
    let mut p = slo_probe();
    p.ttft_p99_slo_s = p.floor_ttft_s / 2.0;
    assert_fires(&clean, &lint_slo(&p), LintCode::Lma260SloBelowFloor);
}

#[test]
fn lma261_enforcement_with_no_actuator() {
    let clean = lint_slo(&slo_probe());
    let mut p = slo_probe();
    p.preempt = false;
    p.shed = false;
    p.degrade_rungs = 0;
    assert_fires(&clean, &lint_slo(&p), LintCode::Lma261SloNoActuator);
}

#[test]
fn lma262_preemption_on_a_single_slot() {
    let clean = lint_slo(&slo_probe());
    let mut p = slo_probe();
    p.slots = 1;
    assert_fires(&clean, &lint_slo(&p), LintCode::Lma262PreemptSingleSlot);
}

fn obs_probe() -> ObsProbe {
    ObsProbe {
        slo_enforce: true,
        ttft_histogram_registered: true,
        flight_enabled: true,
        flight_capacity: 256,
        chaos_faults_armed: true,
    }
}

#[test]
fn lma270_enforcement_without_ttft_histogram() {
    let clean = lint_obs(&obs_probe());
    let mut p = obs_probe();
    p.ttft_histogram_registered = false;
    assert_fires(&clean, &lint_obs(&p), LintCode::Lma270SloWithoutTtftHistogram);
}

#[test]
fn lma271_armed_flight_recorder_with_zero_capacity() {
    let clean = lint_obs(&obs_probe());
    let mut p = obs_probe();
    p.flight_capacity = 0;
    assert_fires(
        &clean,
        &lint_obs(&p),
        LintCode::Lma271FlightRecorderZeroCapacity,
    );
}

fn paging_probe() -> PagingProbe {
    PagingProbe {
        page_tokens: 16,
        page_bytes: 16 * 2048,
        bytes_per_token: 2048,
        kv_block_tokens: 512,
        pages_total: 256,
        pages_in_use: 64,
        page_refcount_sum: 80,
        seq_mapped_pages: 80,
        shared_write_violations: 0,
    }
}

#[test]
fn lma280_page_does_not_tile_kv_block() {
    let clean = lint_paging(&paging_probe());
    let mut p = paging_probe();
    p.kv_block_tokens = 500; // 500 % 16 != 0
    assert_fires(&clean, &lint_paging(&p), LintCode::Lma280PageGeometryInvalid);
}

#[test]
fn lma281_refcount_sum_drifts_from_page_tables() {
    let clean = lint_paging(&paging_probe());
    let mut p = paging_probe();
    p.page_refcount_sum -= 1;
    assert_fires(&clean, &lint_paging(&p), LintCode::Lma281PageRefcountImbalance);
}

#[test]
fn lma282_in_place_write_on_shared_page() {
    let clean = lint_paging(&paging_probe());
    let mut p = paging_probe();
    p.shared_write_violations = 2;
    assert_fires(
        &clean,
        &lint_paging(&p),
        LintCode::Lma282DoubleMappedWritablePage,
    );
}

fn verify_probe() -> VerifyProbe {
    VerifyProbe {
        axes: vec![
            ("model".into(), 3),
            ("pool_bytes".into(), 4),
            ("page_tokens".into(), 4),
            ("slo".into(), 3),
            ("ladder".into(), 2),
        ],
        configs_explored: 288,
        configs_floor: 200,
        unsoundness_witnesses: Vec::new(),
        declared_transitions: vec!["admit/fresh".into(), "append/cow-fork".into()],
        exercised_transitions: vec!["admit/fresh".into(), "append/cow-fork".into()],
        interleavings: 12_000,
    }
}

#[test]
fn lma290_sweep_axis_collapsed_to_a_point() {
    let clean = lint_verify(&verify_probe());
    let mut p = verify_probe();
    p.axes[2].1 = 1;
    assert_fires(&clean, &lint_verify(&p), LintCode::Lma290SweepDomainDegenerate);
}

#[test]
fn lma291_lint_passed_where_ground_truth_failed() {
    let clean = lint_verify(&verify_probe());
    let mut p = verify_probe();
    p.unsoundness_witnesses.push(UnsoundnessWitness {
        config: "opt-30b/pool=8GiB/page=16/slo=none/ladder=flat".into(),
        invariant: "pool_capacity".into(),
        detail: "admission granted 257 of 256 pages".into(),
    });
    assert_fires(&clean, &lint_verify(&p), LintCode::Lma291LintUnsoundnessWitness);
}

#[test]
fn lma292_declared_transition_never_exercised() {
    let clean = lint_verify(&verify_probe());
    let mut p = verify_probe();
    p.exercised_transitions.retain(|t| t != "append/cow-fork");
    assert_fires(
        &clean,
        &lint_verify(&p),
        LintCode::Lma292UncheckedProtocolTransition,
    );
}

fn async_probe() -> AsyncProbe {
    AsyncProbe {
        channel_capacity: 32,
        time_scale: 1.0,
        ttft_p99_slo_s: Some(300.0),
        floor_ttft_s: 12.0,
    }
}

#[test]
fn lma300_zero_capacity_token_channel() {
    let clean = lint_async(&async_probe());
    let mut p = async_probe();
    p.channel_capacity = 0;
    assert_fires(&clean, &lint_async(&p), LintCode::Lma300AsyncZeroChannelCapacity);
}

#[test]
fn lma301_wall_slo_at_or_below_physical_floor() {
    let clean = lint_async(&async_probe());
    let mut p = async_probe();
    p.ttft_p99_slo_s = Some(p.floor_ttft_s);
    assert_fires(&clean, &lint_async(&p), LintCode::Lma301AsyncSloBelowFloor);
}

#[test]
fn lma302_degenerate_time_scale() {
    let clean = lint_async(&async_probe());
    let mut p = async_probe();
    p.time_scale = f64::NAN;
    assert_fires(&clean, &lint_async(&p), LintCode::Lma302AsyncBadTimeScale);
}

#[test]
fn every_shipped_code_has_mutation_coverage() {
    // Guard against adding a code without a mutation test: the list of
    // codes exercised above must cover LintCode::ALL. Kept by hand —
    // update both when adding a lint.
    let covered = [
        LintCode::Lma001CyclicGraph,
        LintCode::Lma002OrphanNode,
        LintCode::Lma003DuplicateEdge,
        LintCode::Lma004ZeroCostNode,
        LintCode::Lma005EdgeOutOfBounds,
        LintCode::Lma006SelfEdge,
        LintCode::Lma007TransferOffBoundary,
        LintCode::Lma101InterOpExceedsWidth,
        LintCode::Lma102ThreadBudgetExceeded,
        LintCode::Lma103WrongTransferVector,
        LintCode::Lma104ZeroTransferThreads,
        LintCode::Lma105DisproportionalTransfer,
        LintCode::Lma106InterOpTotalMismatch,
        LintCode::Lma107StepBelowCompute,
        LintCode::Lma108InvalidPolicy,
        LintCode::Lma109CapacityExceeded,
        LintCode::Lma110BundleExceedsCache,
        LintCode::Lma201DimensionalMismatch,
        LintCode::Lma202TgenNotMax,
        LintCode::Lma203QuantizedLargerThanF16,
        LintCode::Lma204NonFiniteQuantity,
        LintCode::Lma250SlotsExceedPool,
        LintCode::Lma251BlockExceedsWidth,
        LintCode::Lma252SlotsUnderutilizePool,
        LintCode::Lma260SloBelowFloor,
        LintCode::Lma261SloNoActuator,
        LintCode::Lma262PreemptSingleSlot,
        LintCode::Lma270SloWithoutTtftHistogram,
        LintCode::Lma271FlightRecorderZeroCapacity,
        LintCode::Lma280PageGeometryInvalid,
        LintCode::Lma281PageRefcountImbalance,
        LintCode::Lma282DoubleMappedWritablePage,
        LintCode::Lma290SweepDomainDegenerate,
        LintCode::Lma291LintUnsoundnessWitness,
        LintCode::Lma292UncheckedProtocolTransition,
        LintCode::Lma300AsyncZeroChannelCapacity,
        LintCode::Lma301AsyncSloBelowFloor,
        LintCode::Lma302AsyncBadTimeScale,
    ];
    for code in LintCode::ALL {
        assert!(covered.contains(&code), "no mutation test for {}", code.as_str());
    }
}
