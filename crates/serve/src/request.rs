//! The serving request/response vocabulary and the seeded virtual-clock
//! arrival queue.
//!
//! All times are virtual microseconds (`u64`) since the start of the
//! serving run: the scheduler advances its clock by the performance
//! model's task costs, never by wall time, so a run is a deterministic
//! function of `(traffic seed, backend, config)`.

use lm_models::ModelConfig;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable cancellation handle: the client side keeps a clone and
/// calls [`CancelToken::cancel_at_us`] (or [`CancelToken::cancel_now`]);
/// the scheduler observes it at every block boundary and resolves the
/// request as a terminal [`Cancellation`], reclaiming its KV lease
/// immediately.
///
/// The token stores the *virtual* microsecond at or after which the
/// client is gone (`u64::MAX` = never). Virtual time keeps cancellation
/// inside the scheduler's determinism contract: a run cancelled "at
/// t=2s" replays identically, which is what the chaos harness's
/// byte-identical replay invariant needs.
#[derive(Debug, Clone)]
pub struct CancelToken {
    at_us: Arc<AtomicU64>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

impl CancelToken {
    /// A token that never fires.
    pub fn never() -> Self {
        CancelToken {
            at_us: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Cancel effective from virtual time `t_us` (earliest wins if
    /// called repeatedly).
    pub fn cancel_at_us(&self, t_us: u64) {
        self.at_us.fetch_min(t_us, Ordering::Relaxed);
    }

    /// Cancel effective immediately: the scheduler notices at its next
    /// block boundary, whatever the virtual clock reads then.
    pub fn cancel_now(&self) {
        self.cancel_at_us(0);
    }

    /// Is the client gone at virtual time `now_us`?
    pub fn is_cancelled_at(&self, now_us: u64) -> bool {
        now_us >= self.at_us.load(Ordering::Relaxed)
    }

    /// The pending cancel time, if one is set.
    pub fn cancel_time_us(&self) -> Option<u64> {
        match self.at_us.load(Ordering::Relaxed) {
            u64::MAX => None,
            t => Some(t),
        }
    }
}

// A default-constructed token must also mean "never": 0 would cancel
// everything at t=0.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        self.at_us.load(Ordering::Relaxed) == other.at_us.load(Ordering::Relaxed)
    }
}

impl Eq for CancelToken {}

// Serialise as the raw cancel time; deserialising recreates a fresh
// (unshared) token with the same firing time.
impl Serialize for CancelToken {
    fn serialize(&self) -> serde::Value {
        serde::Value::PosInt(self.at_us.load(Ordering::Relaxed))
    }
}

impl Deserialize for CancelToken {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let t: u64 = Deserialize::deserialize(value)?;
        let token = CancelToken::never();
        token.at_us.store(t, Ordering::Relaxed);
        Ok(token)
    }
}

/// One independent generation request entering the serving queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub id: u64,
    /// Prompt token ids. Requests are ragged: prompts of different
    /// lengths mix freely; the scheduler pads within an admitted group.
    pub prompt: Vec<u32>,
    /// Tokens to generate beyond the prompt.
    pub gen_len: usize,
    /// Larger is more urgent; ties broken by arrival then id.
    pub priority: u8,
    /// Absolute virtual deadline for *admission* (not completion); a
    /// request still queued past it is rejected, mirroring client
    /// timeouts. `None` waits forever.
    pub deadline_us: Option<u64>,
    /// Per-request sampling seed (synthetic backends derive the token
    /// stream from it).
    pub seed: u64,
    /// Virtual arrival time.
    pub arrival_us: u64,
    /// Client-side cancellation handle; defaults to "never". The
    /// scheduler checks it at every block boundary, whether the request
    /// is queued or running.
    pub cancel: CancelToken,
}

impl Request {
    pub fn new(id: u64, prompt: Vec<u32>, gen_len: usize) -> Self {
        Request {
            id,
            prompt,
            gen_len,
            priority: 0,
            deadline_us: None,
            seed: id,
            arrival_us: 0,
            cancel: CancelToken::never(),
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    pub fn with_arrival_us(mut self, arrival_us: u64) -> Self {
        self.arrival_us = arrival_us;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a shared cancellation handle (keep a clone to fire it).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// A completed request with its full token stream and latency marks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    pub id: u64,
    pub tokens: Vec<u32>,
    pub arrival_us: u64,
    /// Virtual time the first generated token was delivered.
    pub first_token_us: u64,
    /// Virtual time the last token was delivered.
    pub finish_us: u64,
}

impl Response {
    /// Time to first token, seconds.
    pub fn ttft_s(&self) -> f64 {
        (self.first_token_us.saturating_sub(self.arrival_us)) as f64 / 1e6
    }

    /// End-to-end request latency, seconds.
    pub fn latency_s(&self) -> f64 {
        (self.finish_us.saturating_sub(self.arrival_us)) as f64 / 1e6
    }
}

/// Why a request was cancelled rather than completed or rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CancelReason {
    /// The (possibly injected) client vanished mid-generation.
    ClientDisconnect,
    /// The request's own [`CancelToken`] fired.
    Explicit,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::ClientDisconnect => write!(f, "client disconnect"),
            CancelReason::Explicit => write!(f, "explicit cancel"),
        }
    }
}

/// Terminal record of a cancelled request: the third way (after
/// [`Response`] and [`Rejection`]) a request resolves. The scheduler
/// guarantees every admitted-or-queued request ends in exactly one of
/// the three; its KV lease (if any) is reclaimed the moment this record
/// is produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cancellation {
    pub id: u64,
    pub reason: CancelReason,
    /// Tokens already streamed to the client before the cancel landed.
    pub delivered: usize,
    /// Virtual time the scheduler observed the cancellation.
    pub cancel_us: u64,
}

/// Why a request never produced a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Failed the engine's shared request checker
    /// ([`lm_engine::validate_request`]).
    Invalid(String),
    /// Still queued past its admission deadline.
    DeadlineExpired { deadline_us: u64, now_us: u64 },
    /// Worst-case KV lease larger than the whole pool: unservable under
    /// this plan no matter how long it waits.
    PoolOverCommit { bytes: usize, capacity: usize },
    /// Admission kept failing after the retry budget with no prospect of
    /// recovery (e.g. injected pool pressure on an otherwise empty pool).
    AdmissionFailed(String),
    /// Shed at admission: the performance model predicts the first token
    /// would land after the request's effective deadline, so queueing it
    /// is doomed work (see `SloPolicy::shed`).
    WouldMissDeadline {
        deadline_us: u64,
        predicted_ttft_us: u64,
    },
}

// The vendored serde derive handles named-field structs and unit-variant
// enums only; a data-carrying enum serialises by hand as a tagged object.
impl Serialize for RejectReason {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        let kind = match self {
            RejectReason::Invalid(reason) => {
                m.insert("reason".into(), serde::Value::String(reason.clone()));
                "invalid"
            }
            RejectReason::DeadlineExpired { deadline_us, now_us } => {
                m.insert("deadline_us".into(), serde::Value::PosInt(*deadline_us));
                m.insert("now_us".into(), serde::Value::PosInt(*now_us));
                "deadline_expired"
            }
            RejectReason::PoolOverCommit { bytes, capacity } => {
                m.insert("bytes".into(), serde::Value::PosInt(*bytes as u64));
                m.insert("capacity".into(), serde::Value::PosInt(*capacity as u64));
                "pool_over_commit"
            }
            RejectReason::AdmissionFailed(reason) => {
                m.insert("reason".into(), serde::Value::String(reason.clone()));
                "admission_failed"
            }
            RejectReason::WouldMissDeadline {
                deadline_us,
                predicted_ttft_us,
            } => {
                m.insert("deadline_us".into(), serde::Value::PosInt(*deadline_us));
                m.insert(
                    "predicted_ttft_us".into(),
                    serde::Value::PosInt(*predicted_ttft_us),
                );
                "would_miss_deadline"
            }
        };
        m.insert("kind".into(), serde::Value::String(kind.to_string()));
        serde::Value::Object(m)
    }
}

impl Deserialize for RejectReason {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for RejectReason"))?;
        let kind: String = serde::field(map, "kind")?;
        match kind.as_str() {
            "invalid" => Ok(RejectReason::Invalid(serde::field(map, "reason")?)),
            "deadline_expired" => Ok(RejectReason::DeadlineExpired {
                deadline_us: serde::field(map, "deadline_us")?,
                now_us: serde::field(map, "now_us")?,
            }),
            "pool_over_commit" => Ok(RejectReason::PoolOverCommit {
                bytes: serde::field(map, "bytes")?,
                capacity: serde::field(map, "capacity")?,
            }),
            "admission_failed" => Ok(RejectReason::AdmissionFailed(serde::field(map, "reason")?)),
            "would_miss_deadline" => Ok(RejectReason::WouldMissDeadline {
                deadline_us: serde::field(map, "deadline_us")?,
                predicted_ttft_us: serde::field(map, "predicted_ttft_us")?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown RejectReason kind '{other}'"
            ))),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Invalid(r) => write!(f, "invalid request: {r}"),
            RejectReason::DeadlineExpired { deadline_us, now_us } => {
                write!(f, "deadline {deadline_us}us expired at {now_us}us")
            }
            RejectReason::PoolOverCommit { bytes, capacity } => {
                write!(f, "KV lease of {bytes} B exceeds the {capacity} B pool")
            }
            RejectReason::AdmissionFailed(r) => write!(f, "admission failed: {r}"),
            RejectReason::WouldMissDeadline {
                deadline_us,
                predicted_ttft_us,
            } => write!(
                f,
                "shed: predicted first token at {predicted_ttft_us}us, deadline {deadline_us}us"
            ),
        }
    }
}

/// A rejected request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    pub id: u64,
    pub reason: RejectReason,
}

/// Requests sorted by arrival time; the scheduler drains the arrived
/// prefix at each block boundary.
#[derive(Debug, Clone, Default)]
pub struct ArrivalQueue {
    /// Sorted by `(arrival_us, id)` ascending; consumed from the front.
    pending: std::collections::VecDeque<Request>,
}

impl ArrivalQueue {
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival_us, r.id));
        ArrivalQueue {
            pending: requests.into(),
        }
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Arrival time of the next not-yet-arrived request.
    pub fn next_arrival_us(&self) -> Option<u64> {
        self.pending.front().map(|r| r.arrival_us)
    }

    /// Remove and return every request with `arrival_us <= now_us`.
    pub fn pop_arrived(&mut self, now_us: u64) -> Vec<Request> {
        let mut out = Vec::new();
        while self
            .pending
            .front()
            .is_some_and(|r| r.arrival_us <= now_us)
        {
            if let Some(r) = self.pending.pop_front() {
                out.push(r);
            }
        }
        out
    }
}

/// Seconds → virtual microseconds, rounding up so no positive cost ever
/// collapses to zero ticks.
pub(crate) fn micros(seconds: f64) -> u64 {
    (seconds * 1e6).ceil().max(0.0) as u64
}

/// Synthesize a seeded open-loop traffic trace: Poisson arrivals at
/// `rps` requests/second with ragged prompt/generation lengths and mixed
/// priorities, sized to fit `cfg`'s context window. Identical
/// `(seed, rps, n)` always produce the identical trace.
pub fn synth_traffic(seed: u64, rps: f64, n: usize, cfg: &ModelConfig) -> Vec<Request> {
    assert!(rps > 0.0, "rps must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t_us = 0u64;
    let max_prompt = ((cfg.max_seq_len / 4) as usize).max(5);
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        // Exponential inter-arrival: -ln(1-u)/rps.
        let u: f64 = rng.gen();
        t_us += micros(-(1.0 - u).ln() / rps);
        let prompt_len = rng.gen_range(4usize..max_prompt);
        let gen_cap = (cfg.max_seq_len as usize - prompt_len).clamp(5, 64);
        let gen_len = rng.gen_range(4usize..gen_cap);
        let prompt = (0..prompt_len)
            .map(|_| rng.gen_range(1u32..cfg.vocab_size as u32))
            .collect();
        let mut req = Request::new(id, prompt, gen_len)
            .with_priority(rng.gen_range(0u64..3) as u8)
            .with_arrival_us(t_us)
            .with_seed(seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        // A slice of the traffic carries admission deadlines (generous:
        // several mean inter-arrival periods).
        if rng.gen_bool(0.125) {
            req = req.with_deadline_us(t_us + micros(64.0 / rps));
        }
        out.push(req);
    }
    out
}

/// Synthesize chat-shaped traffic for the prefix-sharing scenario:
/// every request's prompt opens with the same `prefix_len`-token system
/// prompt followed by a short unique user suffix. Returns
/// `(shared, control)` — the control trace carries identical arrivals,
/// lengths, priorities, and generation seeds, but a per-request unique
/// prefix of the same length, so any throughput difference between the
/// two runs is attributable to prefix sharing alone. Identical
/// `(seed, rps, n, prefix_len)` always produce identical traces.
pub fn synth_shared_prefix_traffic(
    seed: u64,
    rps: f64,
    n: usize,
    cfg: &ModelConfig,
    prefix_len: usize,
) -> (Vec<Request>, Vec<Request>) {
    assert!(rps > 0.0, "rps must be positive");
    assert!(prefix_len >= 1, "a shared prefix needs at least one token");
    assert!(
        prefix_len + 16 + 32 <= cfg.max_seq_len as usize,
        "prefix must leave room for suffix and generation"
    );
    let vocab = cfg.vocab_size as u32;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    let prefix: Vec<u32> = (0..prefix_len).map(|_| rng.gen_range(1..vocab)).collect();
    let mut t_us = 0u64;
    let mut shared = Vec::with_capacity(n);
    let mut control = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let u: f64 = rng.gen();
        t_us += micros(-(1.0 - u).ln() / rps);
        let suffix_len = rng.gen_range(4usize..16);
        let gen_len = rng.gen_range(8usize..32);
        let suffix: Vec<u32> = (0..suffix_len).map(|_| rng.gen_range(1..vocab)).collect();
        let unique: Vec<u32> = (0..prefix_len).map(|_| rng.gen_range(1..vocab)).collect();
        let req_seed = seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let make = |head: &[u32]| {
            let prompt: Vec<u32> = head.iter().chain(&suffix).copied().collect();
            Request::new(id, prompt, gen_len)
                .with_arrival_us(t_us)
                .with_seed(req_seed)
        };
        shared.push(make(&prefix));
        control.push(make(&unique));
    }
    (shared, control)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    #[test]
    fn traffic_is_deterministic_and_well_formed() {
        let cfg = presets::opt_30b();
        let a = synth_traffic(7, 4.0, 32, &cfg);
        let b = synth_traffic(7, 4.0, 32, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let mut prev = 0;
        for r in &a {
            assert!(!r.prompt.is_empty());
            assert!(r.gen_len >= 4);
            assert!((r.prompt.len() + r.gen_len) as u64 <= cfg.max_seq_len);
            assert!(r.arrival_us >= prev, "arrivals must be monotone");
            prev = r.arrival_us;
        }
        let c = synth_traffic(8, 4.0, 32, &cfg);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrival_queue_drains_in_time_order() {
        let reqs = vec![
            Request::new(1, vec![1], 2).with_arrival_us(50),
            Request::new(0, vec![1], 2).with_arrival_us(10),
            Request::new(2, vec![1], 2).with_arrival_us(90),
        ];
        let mut q = ArrivalQueue::new(reqs);
        assert_eq!(q.next_arrival_us(), Some(10));
        assert_eq!(q.pop_arrived(5).len(), 0);
        let first = q.pop_arrived(60);
        assert_eq!(first.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_arrived(100)[0].id, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn response_latency_math() {
        let r = Response {
            id: 0,
            tokens: vec![1, 2],
            arrival_us: 1_000_000,
            first_token_us: 1_500_000,
            finish_us: 3_000_000,
        };
        assert!((r.ttft_s() - 0.5).abs() < 1e-9);
        assert!((r.latency_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn micros_rounds_up() {
        assert_eq!(micros(0.0), 0);
        assert_eq!(micros(1e-7), 1);
        assert_eq!(micros(1.5), 1_500_000);
    }

    #[test]
    fn cancel_token_defaults_to_never_and_earliest_wins() {
        let t = CancelToken::default();
        assert!(!t.is_cancelled_at(0));
        assert!(!t.is_cancelled_at(u64::MAX - 1));
        assert_eq!(t.cancel_time_us(), None);
        t.cancel_at_us(500);
        t.cancel_at_us(900); // later call cannot un-cancel
        assert_eq!(t.cancel_time_us(), Some(500));
        assert!(!t.is_cancelled_at(499));
        assert!(t.is_cancelled_at(500));
        let clone = t.clone();
        clone.cancel_at_us(100); // clones share state
        assert_eq!(t.cancel_time_us(), Some(100));
    }

    #[test]
    fn cancel_token_rides_along_on_request_clones() {
        let token = CancelToken::never();
        let req = Request::new(3, vec![1, 2], 4).with_cancel(token.clone());
        let copy = req.clone();
        token.cancel_now();
        assert!(copy.cancel.is_cancelled_at(0));
    }

    #[test]
    fn shared_prefix_traffic_pairs_shared_and_control() {
        let cfg = presets::opt_30b();
        let (s1, c1) = synth_shared_prefix_traffic(7, 4.0, 16, &cfg, 96);
        let (s2, c2) = synth_shared_prefix_traffic(7, 4.0, 16, &cfg, 96);
        assert_eq!(s1, s2, "shared trace is deterministic");
        assert_eq!(c1, c2, "control trace is deterministic");
        let prefix = &s1[0].prompt[..96];
        for (s, c) in s1.iter().zip(&c1) {
            assert_eq!(&s.prompt[..96], prefix, "all shared requests open alike");
            assert_eq!(s.prompt.len(), c.prompt.len(), "paired lengths match");
            assert_eq!(s.arrival_us, c.arrival_us, "paired arrivals match");
            assert_eq!(s.gen_len, c.gen_len, "paired generations match");
            assert_eq!(&s.prompt[96..], &c.prompt[96..], "suffixes match pairwise");
        }
        let distinct: std::collections::BTreeSet<_> =
            c1.iter().map(|r| r.prompt[..96].to_vec()).collect();
        assert_eq!(distinct.len(), c1.len(), "control prefixes are unique");
    }

    #[test]
    fn cancellation_and_new_reject_arm_round_trip_serde() {
        let c = Cancellation {
            id: 9,
            reason: CancelReason::ClientDisconnect,
            delivered: 5,
            cancel_us: 1234,
        };
        let v = Serialize::serialize(&c);
        let back: Cancellation = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, c);

        let r = RejectReason::WouldMissDeadline {
            deadline_us: 10,
            predicted_ttft_us: 25,
        };
        let v = Serialize::serialize(&r);
        let back: RejectReason = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, r);
        assert!(r.to_string().contains("shed"));
    }
}
