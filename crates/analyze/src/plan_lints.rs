//! Parallelism-plan and policy lints (`LMA1xx`).
//!
//! These check the *outputs* of Algorithm 3 and the offloading policy
//! against the constraints the paper derives: inter-op bounded by the
//! graph's maximum concurrency level (§4.1), the thread budget
//! `inter_op·intra_op + 5 ≤ total threads` (Algorithm 3 lines 6-7),
//! volume-proportional transfer-thread shares (line 9), and memory
//! feasibility of the policy's placements (§3).

use crate::diag::{Diagnostic, LintCode, Report};
use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_parallelism::{
    bundle_small_ops, kahn, OpGraph, ParallelismPlan, SearchConfig, TransferTask,
    NUM_TRANSFER_TASKS,
};
use lm_sim::policy::GPU_WORKING_RESERVE;
use lm_sim::{memory_plan, Policy};

/// Lint a parallelism plan against the graph and platform it was derived
/// for.
pub fn lint_plan(
    plan: &ParallelismPlan,
    graph: &OpGraph,
    cfg: &SearchConfig,
    transfers: &[TransferTask],
) -> Report {
    let mut out = Vec::new();

    // LMA101: inter-op beyond the Kahn width wastes workers and pays the
    // pool penalty (§4.1's decline past the concurrency level).
    if let Some(analysis) = kahn::analyze(graph) {
        let width = analysis.max_concurrency().max(1) as u32;
        if plan.inter_op_compute > width {
            out.push(Diagnostic::error(
                LintCode::Lma101InterOpExceedsWidth,
                "plan".to_string(),
                format!(
                    "inter_op_compute {} exceeds the graph's maximum \
                     concurrency level {width}",
                    plan.inter_op_compute
                ),
            ));
        }
    }

    // LMA102: the thread budget. Compute workers plus transfer threads
    // must fit in the hardware threads Algorithm 3 divides.
    let transfer_total: u32 = plan.transfer_threads.iter().sum();
    let used = plan.inter_op_compute * plan.intra_op_compute + transfer_total;
    if used > cfg.max_threads {
        out.push(Diagnostic::error(
            LintCode::Lma102ThreadBudgetExceeded,
            "plan".to_string(),
            format!(
                "{} compute x {} intra + {transfer_total} transfer = {used} \
                 threads > budget {}",
                plan.inter_op_compute, plan.intra_op_compute, cfg.max_threads
            ),
        ));
    }

    // LMA103: exactly five load/store tasks (Algorithm 1).
    if plan.transfer_threads.len() != NUM_TRANSFER_TASKS || transfers.len() != NUM_TRANSFER_TASKS {
        out.push(Diagnostic::error(
            LintCode::Lma103WrongTransferVector,
            "plan".to_string(),
            format!(
                "expected {NUM_TRANSFER_TASKS} transfer tasks, plan grants \
                 {} over {} declared tasks",
                plan.transfer_threads.len(),
                transfers.len()
            ),
        ));
    } else {
        // LMA104: a zero grant starves a transfer task entirely — the
        // decode step then waits on an unserved link.
        for (task, &thr) in transfers.iter().zip(&plan.transfer_threads) {
            if thr == 0 {
                out.push(Diagnostic::error(
                    LintCode::Lma104ZeroTransferThreads,
                    format!("transfer {}", task.name),
                    "granted zero threads; the task can never run".to_string(),
                ));
            }
        }

        // LMA105: proportionality (line 9). Strictly more bytes must
        // never receive strictly fewer threads.
        for (i, a) in transfers.iter().enumerate() {
            for (j, b) in transfers.iter().enumerate() {
                if a.bytes > b.bytes
                    && plan.transfer_threads[i] < plan.transfer_threads[j]
                {
                    out.push(Diagnostic::warn(
                        LintCode::Lma105DisproportionalTransfer,
                        format!("transfers {} vs {}", a.name, b.name),
                        format!(
                            "{} moves {} bytes on {} threads while {} moves \
                             {} bytes on {} threads",
                            a.name,
                            a.bytes,
                            plan.transfer_threads[i],
                            b.name,
                            b.bytes,
                            plan.transfer_threads[j]
                        ),
                    ));
                }
            }
        }
    }

    // LMA106: the bookkeeping identity inter_op_total = compute + 5.
    if plan.inter_op_total != plan.inter_op_compute + NUM_TRANSFER_TASKS as u32 {
        out.push(Diagnostic::error(
            LintCode::Lma106InterOpTotalMismatch,
            "plan".to_string(),
            format!(
                "inter_op_total {} != inter_op_compute {} + {NUM_TRANSFER_TASKS}",
                plan.inter_op_total, plan.inter_op_compute
            ),
        ));
    }

    // LMA107: the step estimate is a max over six tasks, one of which is
    // compute — it can never be below the compute estimate.
    if plan.est_step_time < plan.est_compute_time - 1e-12 {
        out.push(Diagnostic::error(
            LintCode::Lma107StepBelowCompute,
            "plan".to_string(),
            format!(
                "est_step_time {} below est_compute_time {}",
                plan.est_step_time, plan.est_compute_time
            ),
        ));
    }

    Report::new(out)
}

/// Lint an offloading policy's placements against the platform memories.
pub fn lint_policy(
    policy: &Policy,
    model: &ModelConfig,
    workload: &Workload,
    platform: &Platform,
) -> Report {
    let mut out = Vec::new();

    // LMA108: field validity (fractions in range, placement coherent).
    if let Err(msg) = policy.validate() {
        out.push(Diagnostic::error(
            LintCode::Lma108InvalidPolicy,
            "policy".to_string(),
            msg,
        ));
        return Report::new(out);
    }

    // LMA109: pool capacities against the model footprint. The GPU keeps
    // a working reserve for in-flight layers; host memory takes the rest.
    let plan = memory_plan(model, workload, platform, policy);
    let gpu_cap = (platform.gpu.mem_capacity as f64 * (1.0 - GPU_WORKING_RESERVE)) as u64;
    if plan.gpu_bytes > gpu_cap {
        out.push(Diagnostic::error(
            LintCode::Lma109CapacityExceeded,
            "policy".to_string(),
            format!(
                "GPU placement needs {} bytes but only {gpu_cap} usable \
                 ({}% working reserve held back)",
                plan.gpu_bytes,
                (GPU_WORKING_RESERVE * 100.0) as u32
            ),
        ));
    }
    if plan.cpu_bytes > platform.cpu.mem_capacity {
        out.push(Diagnostic::error(
            LintCode::Lma109CapacityExceeded,
            "policy".to_string(),
            format!(
                "host placement needs {} bytes but the host has {}",
                plan.cpu_bytes, platform.cpu.mem_capacity
            ),
        ));
    }

    Report::new(out)
}

/// Lint operator bundling against the LLC: bundling exists to *avoid*
/// cache thrashing, so a bundle whose accumulated working set exceeds a
/// socket's last-level cache defeats the purpose (`LMA110`).
pub fn lint_bundles(graph: &OpGraph, min_flops: f64, platform: &Platform) -> Report {
    let mut out = Vec::new();
    let bundled = bundle_small_ops(graph, min_flops);
    let llc = platform.cpu.llc_bytes as f64;
    // Only merged groups are judged: a single operator larger than the
    // LLC is a property of the model, not of the bundling decision.
    let mut members = vec![0usize; bundled.graph.len()];
    for &m in &bundled.mapping {
        members[m] += 1;
    }
    for (u, node) in bundled.graph.nodes.iter().enumerate() {
        if members[u] >= 2 && node.bytes > llc {
            out.push(Diagnostic::warn(
                LintCode::Lma110BundleExceedsCache,
                format!("bundle {u} ({})", node.name),
                format!(
                    "{}-op bundle's working set {:.0} bytes exceeds the \
                     {llc:.0}-byte per-socket LLC",
                    members[u], node.bytes
                ),
            ));
        }
    }
    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_parallelism::attention_graph;

    fn derived() -> (ParallelismPlan, OpGraph, SearchConfig, Vec<TransferTask>) {
        let platform = presets::single_gpu_a100();
        let model = models::opt_30b();
        let workload = Workload::parallelism_study();
        let policy = Policy::flexgen_default();
        lm_offload_controller_stub::derive(&platform, &model, &workload, &policy)
    }

    // The real controller lives in `lm-offload`, which depends on this
    // crate's siblings but not on `lm-analyze`; tests rebuild the same
    // derivation inline to avoid a cyclic dev-dependency.
    mod lm_offload_controller_stub {
        use super::*;
        use lm_parallelism::{
            try_find_optimal_parallelism, CpuScalingModel, ProfileTable,
        };

        pub fn derive(
            platform: &Platform,
            model: &ModelConfig,
            workload: &Workload,
            _policy: &Policy,
        ) -> (ParallelismPlan, OpGraph, SearchConfig, Vec<TransferTask>) {
            let graph = attention_graph(
                workload.block_size(),
                workload.prompt_len + workload.gen_len / 2,
                model.hidden,
                7,
            );
            let scaling = CpuScalingModel::from_cpu(&platform.cpu);
            let profile = ProfileTable::synthesize(
                &graph,
                &scaling,
                20e9,
                12e9,
                platform.cpu.total_threads(),
            );
            let cfg = SearchConfig::for_platform(platform);
            let transfers = vec![
                TransferTask { name: "load_weight".into(), bytes: 550_000_000 },
                TransferTask { name: "load_cache".into(), bytes: 0 },
                TransferTask { name: "load_activation".into(), bytes: 9_000_000 },
                TransferTask { name: "store_cache".into(), bytes: 18_000_000 },
                TransferTask { name: "store_activation".into(), bytes: 9_000_000 },
            ];
            let plan = try_find_optimal_parallelism(&graph, &profile, &scaling, &cfg, &transfers)
                .expect("feasible");
            (plan, graph, cfg, transfers)
        }
    }

    #[test]
    fn searched_plan_is_clean() {
        let (plan, graph, cfg, transfers) = derived();
        let r = lint_plan(&plan, &graph, &cfg, &transfers);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn default_policy_is_clean_on_a100() {
        let r = lint_policy(
            &Policy::flexgen_default(),
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &presets::single_gpu_a100(),
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn oversubscribed_plan_flagged() {
        let (mut plan, graph, cfg, transfers) = derived();
        plan.intra_op_compute = cfg.max_threads; // 7 * 112 threads
        let r = lint_plan(&plan, &graph, &cfg, &transfers);
        assert!(r.has(LintCode::Lma102ThreadBudgetExceeded), "{r}");
    }

    #[test]
    fn infeasible_policy_flagged() {
        let all_gpu = Policy {
            wg: 1.0,
            cg: 1.0,
            hg: 1.0,
            weights_dtype: lm_models::DType::F16,
            kv_dtype: lm_models::DType::F16,
            attention: lm_sim::AttentionPlacement::Gpu,
        };
        let r = lint_policy(
            &all_gpu,
            &models::opt_30b(),
            &Workload::motivation(),
            &presets::single_gpu_a100(),
        );
        assert!(r.has(LintCode::Lma109CapacityExceeded), "{r}");
    }
}
