//! # lm-tensor
//!
//! A from-scratch CPU tensor library: the numeric substrate for the real
//! execution mode of the LM-Offload reproduction.
//!
//! Provides dense f32 tensors, rayon-parallel matmul/attention/MLP kernels,
//! and — centrally for the paper — the group-wise min-max quantization of
//! Algorithm 2 with dequantization per Eq. 11 ([`quant`]).
//!
//! The library favours simplicity over generality: owned contiguous
//! storage, no views, no autograd. The kernels are differential-tested
//! against naive references and property-tested (quantization error bounds,
//! softmax distributions, causal-attention isolation).
//!
//! ```
//! use lm_tensor::{quantize, dequantize, QuantConfig, Tensor};
//!
//! let weights = Tensor::randn([128, 64], 1.0, 42);
//! let q = quantize(&weights, QuantConfig::int4());       // Algorithm 2
//! assert!(q.compression_ratio() > 6.0);                  // ~4 bits/elem
//! let restored = dequantize(&q);                         // Eq. 11
//! assert!(weights.max_abs_diff(&restored) <= q.error_bound() + 1e-6);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod f16;
pub mod ops;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use f16::{f16_bits_to_f32, f32_to_f16_bits, F16Tensor};
pub use ops::attention::{mha_decode, mha_prefill, KvCache};
pub use ops::rope::{apply_rope_decode, apply_rope_prefill, ROPE_THETA};
pub use ops::linear::{Linear, WeightStore};
pub use quant::{dequantize, quantize, QuantConfig, QuantizedTensor};
pub use shape::Shape;
pub use tensor::Tensor;
