//! Cost-model consistency lints (`LMA2xx`).
//!
//! The analytic model (Eq. 1-24) mixes quantities in bytes, bytes/second
//! and seconds; a units slip (GB vs bytes, ms vs s) silently corrupts
//! every downstream estimate. These lints check *observations sampled
//! from the live implementation* — a [`ModelProbe`] — against relations
//! that must hold dimensionally and structurally:
//!
//! - a transfer task's duration is bounded below by `bytes / bandwidth`
//!   (`LMA201`: `bytes/s × s` must cover the bytes moved);
//! - `T_gen` equals the max over the six per-resource aggregates, Eq. 2
//!   (`LMA202`);
//! - a quantized at-rest footprint never exceeds fp16 (`LMA203`);
//! - every sampled quantity is finite and non-negative (`LMA204`).
//!
//! Sampling and checking are deliberately separate: mutation tests
//! corrupt probe fields to prove each lint fires, without having to
//! construct an inconsistent `CostProvider`.

use crate::diag::{Diagnostic, LintCode, Report};
use lm_hardware::Platform;
use lm_models::{footprint, DType, ModelConfig, Workload};
use lm_sim::{t_gen, BaseCostModel, CostProvider, Policy};
use serde::{Deserialize, Serialize};

/// Observations sampled from a deployment's cost model at one decode
/// step, in base units (bytes, bytes/second, seconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProbe {
    /// Effective host-to-device bandwidth, bytes/s.
    pub h2d_bw: f64,
    /// Effective device-to-host bandwidth, bytes/s.
    pub d2h_bw: f64,
    /// Streamed weight bytes per layer.
    pub weight_bytes: f64,
    /// Decode step the times were sampled at.
    pub token: u64,
    /// Batches per zig-zag block.
    pub num_batches: u64,
    /// Sampled per-task durations, seconds (per layer; cache/activation
    /// tasks are per batch).
    pub load_weight_time: f64,
    pub load_cache_time: f64,
    pub load_activation_time: f64,
    pub store_cache_time: f64,
    pub store_activation_time: f64,
    pub compute_cpu_time: f64,
    pub compute_gpu_time: f64,
    /// Sampled `T_gen` at the same step (Eq. 2).
    pub t_gen: f64,
    /// At-rest weight footprint under the policy's dtype, bytes.
    pub weights_at_rest_bytes: f64,
    /// The same footprint at fp16, bytes.
    pub weights_f16_bytes: f64,
    /// At-rest KV footprint under the policy's dtype, bytes.
    pub kv_at_rest_bytes: f64,
    /// The same KV footprint at fp16, bytes.
    pub kv_f16_bytes: f64,
}

impl ModelProbe {
    /// Sample a probe from the analytic model of a deployment at decode
    /// step `token`.
    pub fn sample(
        platform: &Platform,
        model: &ModelConfig,
        workload: &Workload,
        policy: &Policy,
        token: u64,
    ) -> ModelProbe {
        let base = BaseCostModel::new(platform, model, workload, *policy);
        ModelProbe {
            h2d_bw: platform.h2d_bw(),
            d2h_bw: platform.d2h_bw(),
            weight_bytes: base.weight_bytes_per_layer() as f64,
            token,
            num_batches: workload.num_batches,
            load_weight_time: base.load_weight(token),
            load_cache_time: base.load_cache(token),
            load_activation_time: base.load_activation(token),
            store_cache_time: base.store_cache(token),
            store_activation_time: base.store_activation(token),
            compute_cpu_time: base.compute_cpu(token),
            compute_gpu_time: base.compute_gpu(token),
            t_gen: t_gen(&base, token, workload.num_batches),
            weights_at_rest_bytes: footprint::weights_bytes(model, policy.weights_dtype) as f64,
            weights_f16_bytes: footprint::weights_bytes(model, DType::F16) as f64,
            kv_at_rest_bytes: footprint::kv_cache_bytes_peak(model, workload, policy.kv_dtype)
                as f64,
            kv_f16_bytes: footprint::kv_cache_bytes_peak(model, workload, DType::F16) as f64,
        }
    }

    fn quantities(&self) -> [(&'static str, f64); 15] {
        [
            ("h2d_bw", self.h2d_bw),
            ("d2h_bw", self.d2h_bw),
            ("weight_bytes", self.weight_bytes),
            ("load_weight_time", self.load_weight_time),
            ("load_cache_time", self.load_cache_time),
            ("load_activation_time", self.load_activation_time),
            ("store_cache_time", self.store_cache_time),
            ("store_activation_time", self.store_activation_time),
            ("compute_cpu_time", self.compute_cpu_time),
            ("compute_gpu_time", self.compute_gpu_time),
            ("t_gen", self.t_gen),
            ("weights_at_rest_bytes", self.weights_at_rest_bytes),
            ("weights_f16_bytes", self.weights_f16_bytes),
            ("kv_at_rest_bytes", self.kv_at_rest_bytes),
            ("kv_f16_bytes", self.kv_f16_bytes),
        ]
    }
}

/// Relative slack allowed on the Eq. 2 max check (task overheads are
/// additive constants the aggregation reproduces exactly, so the slack
/// only absorbs floating-point noise).
const TGEN_REL_TOL: f64 = 1e-9;

/// Run every model lint over a sampled probe.
pub fn lint_model(probe: &ModelProbe) -> Report {
    let mut out = Vec::new();

    // LMA204 first: the remaining lints assume finite arithmetic.
    let mut finite = true;
    for (name, v) in probe.quantities() {
        if !v.is_finite() || v < 0.0 {
            finite = false;
            out.push(Diagnostic::error(
                LintCode::Lma204NonFiniteQuantity,
                format!("probe.{name}"),
                format!("sampled value {v} is not a finite non-negative number"),
            ));
        }
    }
    if !finite {
        return Report::new(out);
    }

    // LMA201: dimensional lower bound. `time [s] × bandwidth [B/s]` must
    // cover the bytes moved; a ms-vs-s or GB-vs-B slip violates this by
    // orders of magnitude. Only the weight load is checked against its
    // bytes — it is the one task whose volume the probe carries — and a
    // 1% tolerance forgives rounding.
    if probe.weight_bytes > 0.0 && probe.h2d_bw > 0.0 {
        let moved = probe.load_weight_time * probe.h2d_bw;
        if moved < probe.weight_bytes * 0.99 {
            out.push(Diagnostic::error(
                LintCode::Lma201DimensionalMismatch,
                "probe.load_weight_time".to_string(),
                format!(
                    "{} s x {} B/s = {moved:.3e} B cannot move the layer's \
                     {:.3e} B (units slip?)",
                    probe.load_weight_time, probe.h2d_bw, probe.weight_bytes
                ),
            ));
        }
    }

    // LMA202: Eq. 2 — T_gen is the max of the per-resource aggregates.
    let nb = probe.num_batches as f64;
    let h2d = probe.load_weight_time + nb * (probe.load_cache_time + probe.load_activation_time);
    let d2h = nb * (probe.store_cache_time + probe.store_activation_time);
    let cpu = nb * probe.compute_cpu_time;
    let gpu = nb * probe.compute_gpu_time;
    let expected = h2d.max(d2h).max(cpu).max(gpu);
    let tol = expected.abs() * TGEN_REL_TOL + 1e-15;
    if (probe.t_gen - expected).abs() > tol {
        out.push(Diagnostic::error(
            LintCode::Lma202TgenNotMax,
            "probe.t_gen".to_string(),
            format!(
                "t_gen {} != max(h2d {h2d}, d2h {d2h}, cpu {cpu}, gpu {gpu}) \
                 = {expected}",
                probe.t_gen
            ),
        ));
    }

    // LMA203: quantization can only shrink the at-rest footprint.
    if probe.weights_at_rest_bytes > probe.weights_f16_bytes {
        out.push(Diagnostic::error(
            LintCode::Lma203QuantizedLargerThanF16,
            "probe.weights_at_rest_bytes".to_string(),
            format!(
                "at-rest weights {} B exceed the fp16 footprint {} B",
                probe.weights_at_rest_bytes, probe.weights_f16_bytes
            ),
        ));
    }
    if probe.kv_at_rest_bytes > probe.kv_f16_bytes {
        out.push(Diagnostic::error(
            LintCode::Lma203QuantizedLargerThanF16,
            "probe.kv_at_rest_bytes".to_string(),
            format!(
                "at-rest KV cache {} B exceeds the fp16 footprint {} B",
                probe.kv_at_rest_bytes, probe.kv_f16_bytes
            ),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn probe() -> ModelProbe {
        ModelProbe::sample(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &Policy::flexgen_default(),
            4,
        )
    }

    #[test]
    fn live_model_probe_is_clean() {
        let r = lint_model(&probe());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn probe_is_clean_across_steps_and_policies() {
        let platform = presets::single_gpu_a100();
        let model = models::opt_30b();
        let w = Workload::parallelism_study();
        let mut quant = Policy::flexgen_default();
        quant.weights_dtype = DType::Int4;
        quant.kv_dtype = DType::Int8;
        for policy in [Policy::flexgen_default(), quant] {
            for token in [0, 7, 31] {
                let p = ModelProbe::sample(&platform, &model, &w, &policy, token);
                let r = lint_model(&p);
                assert!(r.is_clean(), "token {token}: {r}");
            }
        }
    }

    #[test]
    fn millisecond_slip_caught() {
        let mut p = probe();
        p.load_weight_time /= 1000.0; // "recorded in ms, read as s"
        let r = lint_model(&p);
        assert!(r.has(LintCode::Lma201DimensionalMismatch), "{r}");
        // The slip also breaks the Eq. 2 aggregate.
        assert!(!r.is_clean());
    }

    #[test]
    fn probe_serializes() {
        let json = serde_json::to_string(&probe()).expect("serialize");
        assert!(json.contains("t_gen"), "{json}");
    }
}
