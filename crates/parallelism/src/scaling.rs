//! Analytic CPU scaling model.
//!
//! Substitutes for the paper's offline profiling of operator execution
//! times under varying thread counts (§4.2): memory-intensive attention
//! operators stop scaling once the memory bandwidth saturates (Fig. 5
//! shows the knee at ~8 threads), crossing the socket boundary pays a NUMA
//! penalty, and co-running operators beyond the LLC's capacity pay a cache
//! contention penalty (Fig. 5 shows inter-op throughput peaking at 12).

use lm_hardware::CpuSpec;
use serde::{Deserialize, Serialize};

/// Scaling parameters; defaults are calibrated to the dual-Xeon-6330
/// behaviour reported in §4.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuScalingModel {
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sockets.
    pub sockets: u32,
    /// Hardware threads (including SMT).
    pub hw_threads: u32,
    /// Threads at which a single memory-bound operator saturates memory
    /// bandwidth (the intra-op knee of Fig. 5).
    pub bw_saturation_threads: f64,
    /// Fractional throughput lost when an operator's threads span sockets.
    pub numa_penalty: f64,
    /// Number of co-running operators whose combined working sets still
    /// fit the LLC (the inter-op peak of Fig. 5).
    pub llc_fit_ops: f64,
    /// Linear cache-contention penalty strength beyond `llc_fit_ops`.
    pub corun_penalty: f64,
    /// Quadratic cache-contention term: past the LLC fit, each extra
    /// co-runner hurts *every* co-runner, so the aggregate cost grows
    /// superlinearly — this is what makes 12 the throughput peak rather
    /// than "more is always better divided by contention".
    pub corun_penalty_quad: f64,
    /// Extra slowdown per unit of thread oversubscription (capped: the
    /// OS stops making things worse once run-queues are saturated).
    pub oversub_penalty: f64,
    /// Penalty per inter-op pool thread beyond `llc_fit_ops`: even idle
    /// pool workers cost NUMA-spread scheduling and cache conflicts (§4.1
    /// gives both reasons for the decline past 12).
    pub pool_penalty_rate: f64,
}

impl CpuScalingModel {
    /// Calibrated defaults for a CPU spec.
    pub fn from_cpu(cpu: &CpuSpec) -> Self {
        CpuScalingModel {
            cores_per_socket: cpu.cores_per_socket,
            sockets: cpu.sockets,
            hw_threads: cpu.total_threads(),
            bw_saturation_threads: 8.0,
            numa_penalty: 0.15,
            llc_fit_ops: 12.0,
            corun_penalty: 0.6,
            corun_penalty_quad: 1.5,
            oversub_penalty: 0.1,
            pool_penalty_rate: 0.004,
        }
    }

    /// Slowdown multiplier from the size of the inter-op worker pool
    /// itself: flat up to `llc_fit_ops` workers, then growing — the
    /// downslope of Fig. 5's inter-op curve.
    pub fn pool_penalty(&self, inter_op: u32) -> f64 {
        1.0 + self.pool_penalty_rate * (inter_op as f64 - self.llc_fit_ops).max(0.0)
    }

    /// Speedup of one memory-intensive operator with `t` threads relative
    /// to one thread: a saturating-exponential roofline with a NUMA
    /// penalty once threads span sockets.
    ///
    /// Shape guarantees (tested): monotone non-decreasing up to the
    /// saturation knee, within a few percent of flat beyond it — matching
    /// the paper's observation that "performance increases but becomes
    /// stable when the number of threads is larger than 8".
    pub fn intra_speedup(&self, t: u32) -> f64 {
        assert!(t >= 1, "at least one thread required");
        let t = t as f64;
        let sat = self.bw_saturation_threads;
        // Smooth-min between linear scaling and the bandwidth ceiling
        // (p-norm with p=4: a hard knee at `sat`), normalised so
        // speedup(1) == 1.
        let raw = |x: f64| x / (1.0 + (x / sat).powi(4)).powf(0.25);
        let mut s = raw(t) / raw(1.0);
        let cps = self.cores_per_socket as f64;
        if t > cps {
            let spill = ((t - cps) / cps).min(1.0);
            s *= 1.0 - self.numa_penalty * spill;
        }
        s
    }

    /// Per-operator throughput multiplier when `c` operators co-run:
    /// 1 while the combined working sets fit the LLC, then decaying from
    /// cache contention (the downslope of Fig. 5's inter-op curve).
    pub fn corun_efficiency(&self, c: u32) -> f64 {
        assert!(c >= 1, "at least one co-running op");
        let over = (c as f64 - self.llc_fit_ops).max(0.0) / self.llc_fit_ops;
        1.0 / (1.0 + self.corun_penalty * over + self.corun_penalty_quad * over * over)
    }

    /// Slowdown multiplier from software-thread oversubscription: asking
    /// for `requested` threads on `hw_threads` hardware threads.
    pub fn oversubscription_factor(&self, requested: u32) -> f64 {
        let ratio = requested as f64 / self.hw_threads as f64;
        if ratio <= 1.0 {
            1.0
        } else {
            1.0 + self.oversub_penalty * (ratio - 1.0).min(6.0)
        }
    }

    /// Effective execution time of an operator whose single-thread time is
    /// `base_secs`, run with `intra` threads while `corun` operators
    /// co-run and `total_requested` software threads exist system-wide.
    pub fn op_time(&self, base_secs: f64, intra: u32, corun: u32, total_requested: u32) -> f64 {
        base_secs / self.intra_speedup(intra) / self.corun_efficiency(corun)
            * self.oversubscription_factor(total_requested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;

    fn model() -> CpuScalingModel {
        CpuScalingModel::from_cpu(&presets::single_gpu_a100().cpu)
    }

    #[test]
    fn speedup_normalised_at_one_thread() {
        let m = model();
        assert!((m.intra_speedup(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_monotone_until_knee_then_flat() {
        // Fig. 5 (left): rising to ~8 threads, then stable.
        let m = model();
        let mut prev = 0.0;
        for t in 1..=8 {
            let s = m.intra_speedup(t);
            assert!(s > prev, "t={t}");
            prev = s;
        }
        let s8 = m.intra_speedup(8);
        let s16 = m.intra_speedup(16);
        let s28 = m.intra_speedup(28);
        // Beyond the knee: gains under 25% despite 3.5x threads.
        assert!(s28 / s8 < 1.25, "s8={s8} s28={s28}");
        assert!(s16 >= s8);
    }

    #[test]
    fn numa_penalty_kicks_in_across_sockets() {
        let m = model();
        // 56 threads span both sockets; speedup dips relative to the
        // saturation asymptote reached within one socket.
        let s28 = m.intra_speedup(28);
        let s56 = m.intra_speedup(56);
        assert!(s56 < s28 * 1.01, "cross-socket should not gain: {s28} -> {s56}");
    }

    #[test]
    fn corun_efficiency_flat_then_decaying() {
        // Fig. 5 (right): no penalty up to ~12 co-running ops, then decay.
        let m = model();
        assert_eq!(m.corun_efficiency(1), 1.0);
        assert_eq!(m.corun_efficiency(12), 1.0);
        let e24 = m.corun_efficiency(24);
        let e112 = m.corun_efficiency(112);
        assert!(e24 < 1.0);
        assert!(e112 < e24);
        assert!(e112 < 0.4, "112 co-runners must thrash: {e112}");
    }

    #[test]
    fn oversubscription_only_beyond_hw() {
        let m = model();
        assert_eq!(m.oversubscription_factor(56), 1.0);
        assert_eq!(m.oversubscription_factor(112), 1.0);
        assert!(m.oversubscription_factor(224) > 1.0);
    }

    #[test]
    fn op_time_composes_factors() {
        let m = model();
        let base = 1.0;
        let fast = m.op_time(base, 8, 4, 32);
        let contended = m.op_time(base, 8, 112, 112 * 56);
        assert!(contended > fast * 2.0, "{contended} vs {fast}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        model().intra_speedup(0);
    }
}
