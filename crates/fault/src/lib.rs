//! Deterministic fault injection for the LM-Offload pipeline.
//!
//! The paper's performance model assumes a well-behaved platform: disks
//! deliver checkpoints, links run at nominal bandwidth, memory pools
//! have the capacity the policy planner budgeted for. This crate
//! supplies the machinery to violate those assumptions on purpose — in
//! the real engine, in the discrete-event simulator, and in the policy
//! layer — so recovery paths (retry with backoff, prefetch
//! backpressure, model-guided degradation) can be exercised and tested.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when off.** A disabled [`FaultInjector`] is a `None`;
//!    every probe is an inlined null check. Token streams with faults
//!    disabled are bit-identical to a build that never heard of this
//!    crate.
//! 2. **Deterministic by seed.** Decisions are *stateless hashes* of
//!    `(seed, kind, site key, attempt)`, not draws from a shared
//!    mutable RNG. Thread interleaving therefore cannot perturb which
//!    operations fail: the same seed produces the same fault pattern
//!    whether the prefetcher wins or loses its races.
//! 3. **Shared accounting.** All layers count injected faults and
//!    recovery actions into one [`FaultStats`], surfaced through
//!    `lm_offload::report` and the `repro` binary.

#![cfg_attr(test, allow(clippy::unwrap_used))]
mod plan;
mod retry;

pub use plan::{FaultConfig, FaultProfile, StormProfile, DEFAULT_EVENT_LOG_CAP};
pub use retry::{RetryError, RetryPolicy};

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Categories of injected misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A disk read returns an I/O error.
    DiskIo,
    /// A disk read delivers only a prefix of the requested bytes.
    TornRead,
    /// A link's effective bandwidth drops for a window.
    LinkDegrade,
    /// A transfer stalls (wall-clock sleep in the engine, extra latency
    /// in the simulator) before completing.
    TransferStall,
    /// A transient allocation claims pool headroom, making the next
    /// allocations see an exhausted pool.
    PoolPressure,
    /// A prefetched layer is dropped between loader and consumer.
    PrefetchDrop,
    /// A serving client disconnects mid-generation: the request must be
    /// cancelled and its KV lease reclaimed immediately.
    ClientDisconnect,
    /// A serving slot crashes mid-generation: the request loses its slot
    /// and must be re-queued to resume from its generated prefix.
    SlotCrash,
}

impl FaultKind {
    const COUNT: usize = 8;

    fn index(self) -> usize {
        match self {
            FaultKind::DiskIo => 0,
            FaultKind::TornRead => 1,
            FaultKind::LinkDegrade => 2,
            FaultKind::TransferStall => 3,
            FaultKind::PoolPressure => 4,
            FaultKind::PrefetchDrop => 5,
            FaultKind::ClientDisconnect => 6,
            FaultKind::SlotCrash => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DiskIo => "disk_io",
            FaultKind::TornRead => "torn_read",
            FaultKind::LinkDegrade => "link_degrade",
            FaultKind::TransferStall => "transfer_stall",
            FaultKind::PoolPressure => "pool_pressure",
            FaultKind::PrefetchDrop => "prefetch_drop",
            FaultKind::ClientDisconnect => "client_disconnect",
            FaultKind::SlotCrash => "slot_crash",
        }
    }
}

/// One injected fault, for event-sequence assertions in tests and for
/// instant markers on trace timelines.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    pub kind: FaultKind,
    /// Which injection point fired (e.g. `"engine.load_layer"`).
    pub site: &'static str,
    /// The caller's natural key for the operation (layer index, task
    /// sequence number, ...).
    pub key: u64,
    /// Retry attempt at the time of injection (0 for first tries).
    pub attempt: u32,
    /// Microseconds since the attached [`lm_trace::TraceClock`] origin
    /// (`None` when no clock is attached), so fault instants line up
    /// with tracer spans in the Perfetto view.
    pub t_us: Option<u64>,
}

/// Timestamps are excluded from equality: which faults fire where is
/// deterministic by seed, *when* they fire is wall-clock noise. This is
/// what lets determinism tests assert `a.events() == b.events()` across
/// runs with clocks attached.
impl PartialEq for FaultEvent {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.site == other.site
            && self.key == other.key
            && self.attempt == other.attempt
    }
}

impl Eq for FaultEvent {}

/// Injected-fault and recovery counters, serialised into results JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    pub seed: u64,
    pub disk_io_faults: u64,
    pub torn_reads: u64,
    pub link_degrades: u64,
    pub transfer_stalls: u64,
    pub pool_pressure_spikes: u64,
    pub prefetch_drops: u64,
    pub client_disconnects: u64,
    pub slot_crashes: u64,
    /// Retries attempted by recovery wrappers.
    pub retries: u64,
    /// Retries that ended in success.
    pub retry_successes: u64,
    /// Times the degradation controller switched to a fallback policy.
    pub degradations: u64,
    /// Total wall/virtual milliseconds added by injected stalls.
    pub stall_ms_total: u64,
    /// Events evicted from the bounded log (counters never drop).
    pub dropped_events: u64,
}

impl FaultStats {
    /// Total injected faults of all kinds.
    pub fn total_faults(&self) -> u64 {
        self.disk_io_faults
            + self.torn_reads
            + self.link_degrades
            + self.transfer_stalls
            + self.pool_pressure_spikes
            + self.prefetch_drops
            + self.client_disconnects
            + self.slot_crashes
    }
}

struct Inner {
    cfg: FaultConfig,
    injected: [AtomicU64; FaultKind::COUNT],
    retries: AtomicU64,
    retry_successes: AtomicU64,
    degradations: AtomicU64,
    stall_ms_total: AtomicU64,
    /// Pressure probes observed across every pool sharing this injector
    /// — the clock the bounded pressure episode runs on. Pools keep
    /// their own per-instance counters, so a rebuilt engine would reset
    /// a per-pool clock and re-enter the episode forever.
    pressure_probes: AtomicU64,
    log: Mutex<EventLog>,
    /// Run-origin clock stamping the event log (attached by the engine
    /// when a tracer is active, so fault instants share the span time
    /// base).
    clock: Mutex<Option<lm_trace::TraceClock>>,
    /// Optional black-box tee: every injected fault is also recorded
    /// into an attached [`lm_trace::FlightRecorder`], so a post-mortem
    /// dump carries the fault history that led up to the failure.
    flight: Mutex<lm_trace::FlightRecorder>,
}

/// The bounded fault event log: a ring buffer of the most recent
/// `cap` events. Eviction drops the *oldest* events and counts them, so
/// `events()` stays order-stable (oldest retained first) and long chaos
/// runs cannot grow memory without bound.
struct EventLog {
    buf: VecDeque<FaultEvent>,
    cap: usize,
    dropped: u64,
}

impl EventLog {
    fn new(cap: usize) -> Self {
        EventLog {
            // Pre-size modestly: storms can have tiny caps.
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: FaultEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        while self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Handle threaded through the pipeline. Clones share counters and the
/// event log. `FaultInjector::disabled()` (and `Default`) produce the
/// zero-cost null injector.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

/// SplitMix64 finaliser — decision hashing.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to [0, 1).
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    /// The null injector: every probe returns "no fault" via an inlined
    /// `None` check; no allocation, no atomics.
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    pub fn new(cfg: FaultConfig) -> Self {
        let log = EventLog::new(cfg.event_log_cap.min(usize::MAX as u64) as usize);
        FaultInjector {
            inner: Some(Arc::new(Inner {
                cfg,
                injected: Default::default(),
                retries: AtomicU64::new(0),
                retry_successes: AtomicU64::new(0),
                degradations: AtomicU64::new(0),
                stall_ms_total: AtomicU64::new(0),
                pressure_probes: AtomicU64::new(0),
                log: Mutex::new(log),
                clock: Mutex::new(None),
                flight: Mutex::new(lm_trace::FlightRecorder::disabled()),
            })),
        }
    }

    /// Enabled injector with the given seed and the default
    /// moderate-rate profile.
    pub fn from_seed(seed: u64) -> Self {
        FaultInjector::new(FaultConfig::profile(seed, FaultProfile::Moderate))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.cfg.seed)
    }

    pub fn config(&self) -> Option<&FaultConfig> {
        self.inner.as_ref().map(|i| &i.cfg)
    }

    /// Stateless decision draw in [0, 1) for `(kind, key, attempt)`.
    fn draw(&self, inner: &Inner, kind: FaultKind, key: u64, attempt: u32) -> f64 {
        let h = mix(
            inner
                .cfg
                .seed
                .wrapping_add(mix(kind.index() as u64))
                .wrapping_add(mix(key).rotate_left(17))
                .wrapping_add(attempt as u64),
        );
        unit(h)
    }

    fn record(&self, inner: &Inner, kind: FaultKind, site: &'static str, key: u64, attempt: u32) {
        inner.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        let t_us = inner
            .clock
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|c| c.now_us());
        {
            let flight = inner.flight.lock().unwrap_or_else(|e| e.into_inner());
            if flight.is_enabled() {
                flight.record(
                    t_us.unwrap_or(0),
                    "fault",
                    format!("{} site={site} key={key} attempt={attempt}", kind.name()),
                );
            }
        }
        let mut log = inner.log.lock().unwrap_or_else(|e| e.into_inner());
        log.push(FaultEvent {
            kind,
            site,
            key,
            attempt,
            t_us,
        });
    }

    /// How many events the bounded log has evicted so far.
    pub fn dropped_events(&self) -> u64 {
        match self.inner.as_deref() {
            Some(inner) => inner.log.lock().unwrap_or_else(|e| e.into_inner()).dropped,
            None => 0,
        }
    }

    /// Attach a run-origin clock; subsequent events get `t_us` stamps on
    /// that time base. No-op on a disabled injector.
    pub fn set_clock(&self, clock: lm_trace::TraceClock) {
        if let Some(inner) = self.inner.as_deref() {
            *inner.clock.lock().unwrap_or_else(|e| e.into_inner()) = Some(clock);
        }
    }

    /// Tee subsequent injected faults into a flight recorder (in
    /// addition to the bounded event log), so black-box dumps include
    /// the fault history. No-op on a disabled injector; timestamps use
    /// the attached clock (0 when none is attached — the serve
    /// scheduler's virtual-clock faults pass their own time via the
    /// scheduler's `sched` records instead).
    pub fn set_flight(&self, flight: lm_trace::FlightRecorder) {
        if let Some(inner) = self.inner.as_deref() {
            *inner.flight.lock().unwrap_or_else(|e| e.into_inner()) = flight;
        }
    }

    /// Should the disk read for `(site, key)` on retry `attempt` fail
    /// with an I/O error?
    #[inline]
    pub fn disk_error(&self, site: &'static str, key: u64, attempt: u32) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        if self.draw(inner, FaultKind::DiskIo, key, attempt) < inner.cfg.disk_error_rate {
            self.record(inner, FaultKind::DiskIo, site, key, attempt);
            true
        } else {
            false
        }
    }

    /// Should the disk read deliver only part of its payload? Returns
    /// the surviving fraction in (0, 1).
    #[inline]
    pub fn torn_read(&self, site: &'static str, key: u64, attempt: u32) -> Option<f64> {
        let inner = self.inner.as_deref()?;
        if self.draw(inner, FaultKind::TornRead, key, attempt) < inner.cfg.torn_read_rate {
            self.record(inner, FaultKind::TornRead, site, key, attempt);
            // Second draw: where the read tears (5%..95% delivered).
            let frac = 0.05 + 0.9 * self.draw(inner, FaultKind::TornRead, key ^ 0xA5A5, attempt);
            Some(frac)
        } else {
            None
        }
    }

    /// Effective bandwidth multiplier for window `key`, if the link is
    /// degraded there (e.g. `Some(0.25)` = quarter speed).
    #[inline]
    pub fn bandwidth_factor(&self, site: &'static str, key: u64) -> Option<f64> {
        let inner = self.inner.as_deref()?;
        if self.draw(inner, FaultKind::LinkDegrade, key, 0) < inner.cfg.link_degrade_rate {
            self.record(inner, FaultKind::LinkDegrade, site, key, 0);
            Some(inner.cfg.link_degrade_factor)
        } else {
            None
        }
    }

    /// Extra latency injected into transfer `key`, if it stalls.
    #[inline]
    pub fn transfer_stall(&self, site: &'static str, key: u64) -> Option<Duration> {
        let inner = self.inner.as_deref()?;
        if self.draw(inner, FaultKind::TransferStall, key, 0) < inner.cfg.stall_rate {
            self.record(inner, FaultKind::TransferStall, site, key, 0);
            inner
                .stall_ms_total
                .fetch_add(inner.cfg.stall_ms, Ordering::Relaxed);
            Some(Duration::from_millis(inner.cfg.stall_ms))
        } else {
            None
        }
    }

    /// Transient extra bytes squatting in the pool around operation
    /// `key` (a pressure spike), if one fires.
    #[inline]
    pub fn pool_pressure(&self, site: &'static str, key: u64) -> Option<u64> {
        let inner = self.inner.as_deref()?;
        // A bounded burst models a pressure *episode*: probes past the
        // burst see a pool that has recovered.
        if inner.cfg.pool_pressure_burst != 0 {
            let n = inner.pressure_probes.fetch_add(1, Ordering::Relaxed) + 1;
            if n > inner.cfg.pool_pressure_burst {
                return None;
            }
        }
        if self.draw(inner, FaultKind::PoolPressure, key, 0) < inner.cfg.pool_pressure_rate {
            self.record(inner, FaultKind::PoolPressure, site, key, 0);
            Some(inner.cfg.pool_pressure_bytes)
        } else {
            None
        }
    }

    /// Does the client of the admission for `(site, key)` disconnect
    /// mid-generation? Returns the fraction of the *remaining* tokens it
    /// sticks around for, in (0, 1) — the scheduler converts that to a
    /// concrete token index (always granting at least one token of
    /// progress, so storms at rate 1.0 still terminate).
    #[inline]
    pub fn client_disconnect(&self, site: &'static str, key: u64) -> Option<f64> {
        let inner = self.inner.as_deref()?;
        if self.draw(inner, FaultKind::ClientDisconnect, key, 0) < inner.cfg.disconnect_rate {
            self.record(inner, FaultKind::ClientDisconnect, site, key, 0);
            // Second draw: how far into the remaining generation the
            // client survives (5%..95%).
            let frac = 0.05
                + 0.9 * self.draw(inner, FaultKind::ClientDisconnect, key ^ 0xC3C3, 0);
            Some(frac)
        } else {
            None
        }
    }

    /// Does the slot serving admission `(site, key)` crash
    /// mid-generation on service attempt `attempt`? Returns the fraction
    /// of the remaining tokens emitted before the crash, in (0, 1).
    /// Attempts are independent draws, so a re-queued request can
    /// succeed on retry.
    #[inline]
    pub fn slot_crash(&self, site: &'static str, key: u64, attempt: u32) -> Option<f64> {
        let inner = self.inner.as_deref()?;
        if self.draw(inner, FaultKind::SlotCrash, key, attempt) < inner.cfg.slot_crash_rate {
            self.record(inner, FaultKind::SlotCrash, site, key, attempt);
            let frac =
                0.05 + 0.9 * self.draw(inner, FaultKind::SlotCrash, key ^ 0x5C5C, attempt);
            Some(frac)
        } else {
            None
        }
    }

    /// Should the prefetched item for `key` be dropped before the
    /// consumer sees it (forcing a demand re-load)?
    #[inline]
    pub fn prefetch_drop(&self, site: &'static str, key: u64) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        if self.draw(inner, FaultKind::PrefetchDrop, key, 0) < inner.cfg.prefetch_drop_rate {
            self.record(inner, FaultKind::PrefetchDrop, site, key, 0);
            true
        } else {
            false
        }
    }

    // ---- recovery accounting ----------------------------------------

    /// Record one retry attempt (called by recovery wrappers).
    pub fn note_retry(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record that a retried operation eventually succeeded.
    pub fn note_retry_success(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.retry_successes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a policy degradation decision.
    pub fn note_degradation(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.degradations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record simulator-side stall time (virtual, so not counted by
    /// [`FaultInjector::transfer_stall`] itself).
    pub fn note_stall_ms(&self, ms: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.stall_ms_total.fetch_add(ms, Ordering::Relaxed);
        }
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> FaultStats {
        let Some(inner) = self.inner.as_deref() else {
            return FaultStats::default();
        };
        let get = |k: FaultKind| inner.injected[k.index()].load(Ordering::Relaxed);
        FaultStats {
            seed: inner.cfg.seed,
            disk_io_faults: get(FaultKind::DiskIo),
            torn_reads: get(FaultKind::TornRead),
            link_degrades: get(FaultKind::LinkDegrade),
            transfer_stalls: get(FaultKind::TransferStall),
            pool_pressure_spikes: get(FaultKind::PoolPressure),
            prefetch_drops: get(FaultKind::PrefetchDrop),
            client_disconnects: get(FaultKind::ClientDisconnect),
            slot_crashes: get(FaultKind::SlotCrash),
            retries: inner.retries.load(Ordering::Relaxed),
            retry_successes: inner.retry_successes.load(Ordering::Relaxed),
            degradations: inner.degradations.load(Ordering::Relaxed),
            stall_ms_total: inner.stall_ms_total.load(Ordering::Relaxed),
            dropped_events: self.dropped_events(),
        }
    }

    /// Chronological injected-fault log (order within one site is the
    /// site's operation order; cross-site order follows wall clock).
    /// Bounded by [`FaultConfig::event_log_cap`]: when full, the oldest
    /// events are evicted, the retained suffix keeps its order, and
    /// [`FaultInjector::dropped_events`] counts the loss.
    pub fn events(&self) -> Vec<FaultEvent> {
        match self.inner.as_deref() {
            Some(inner) => inner
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .buf
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.as_deref() {
            Some(inner) => write!(f, "FaultInjector(seed={})", inner.cfg.seed),
            None => write!(f, "FaultInjector(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let f = FaultInjector::disabled();
        for k in 0..10_000 {
            assert!(!f.disk_error("t", k, 0));
            assert!(f.torn_read("t", k, 0).is_none());
            assert!(f.bandwidth_factor("t", k).is_none());
            assert!(f.transfer_stall("t", k).is_none());
            assert!(f.pool_pressure("t", k).is_none());
            assert!(!f.prefetch_drop("t", k));
            assert!(f.client_disconnect("t", k).is_none());
            assert!(f.slot_crash("t", k, 0).is_none());
        }
        assert_eq!(f.stats(), FaultStats::default());
        assert!(f.events().is_empty());
        assert_eq!(f.dropped_events(), 0);
    }

    #[test]
    fn disconnects_and_crashes_draw_progress_fractions() {
        let f = FaultInjector::new(FaultConfig {
            disconnect_rate: 1.0,
            slot_crash_rate: 1.0,
            ..FaultConfig::quiescent(13)
        });
        for k in 0..500 {
            let d = f.client_disconnect("serve", k).expect("rate 1.0 fires");
            assert!((0.05..0.95).contains(&d), "disconnect frac {d}");
            let c0 = f.slot_crash("serve", k, 0).expect("rate 1.0 fires");
            let c1 = f.slot_crash("serve", k, 1).expect("rate 1.0 fires");
            assert!((0.05..0.95).contains(&c0), "crash frac {c0}");
            // Attempts are independent draws: retried crashes land at a
            // different point (almost surely, and deterministically so).
            if k == 0 {
                assert_ne!(c0.to_bits(), c1.to_bits());
            }
        }
        let s = f.stats();
        assert_eq!(s.client_disconnects, 500);
        assert_eq!(s.slot_crashes, 1000);
        assert_eq!(s.total_faults(), 1500);
    }

    #[test]
    fn event_log_is_a_ring_buffer_with_stable_order() {
        let f = FaultInjector::new(FaultConfig {
            disk_error_rate: 1.0,
            event_log_cap: 8,
            ..FaultConfig::quiescent(3)
        });
        for k in 0..20 {
            assert!(f.disk_error("t", k, 0));
        }
        let ev = f.events();
        assert_eq!(ev.len(), 8, "log bounded at the cap");
        // Oldest evicted, retained suffix in order: keys 12..=19.
        let keys: Vec<u64> = ev.iter().map(|e| e.key).collect();
        assert_eq!(keys, (12..20).collect::<Vec<u64>>());
        assert_eq!(f.dropped_events(), 12);
        let s = f.stats();
        assert_eq!(s.dropped_events, 12);
        assert_eq!(s.disk_io_faults, 20, "counters never drop");
    }

    #[test]
    fn zero_cap_keeps_no_events_but_counts() {
        let f = FaultInjector::new(FaultConfig {
            disk_error_rate: 1.0,
            event_log_cap: 0,
            ..FaultConfig::quiescent(3)
        });
        for k in 0..5 {
            assert!(f.disk_error("t", k, 0));
        }
        assert!(f.events().is_empty());
        assert_eq!(f.dropped_events(), 5);
        assert_eq!(f.stats().disk_io_faults, 5);
    }

    #[test]
    fn pressure_burst_bounds_the_episode() {
        let f = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 1.0,
            pool_pressure_bytes: 1 << 20,
            pool_pressure_burst: 4,
            ..FaultConfig::quiescent(9)
        });
        // The burst clock counts probes across all callers, so the key
        // (a per-pool counter that would reset on engine rebuild) does
        // not matter — only how many probes this injector has seen.
        for i in 0..4 {
            assert!(f.pool_pressure("t", 1).is_some(), "probe {i} inside burst");
        }
        for i in 4..100 {
            assert!(f.pool_pressure("t", 1).is_none(), "probe {i} past burst");
        }
        assert_eq!(f.stats().pool_pressure_spikes, 4);
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultInjector::from_seed(42);
        let b = FaultInjector::from_seed(42);
        for k in 0..2_000 {
            assert_eq!(a.disk_error("t", k, 0), b.disk_error("t", k, 0));
            assert_eq!(a.torn_read("t", k, 1), b.torn_read("t", k, 1));
            assert_eq!(a.pool_pressure("t", k), b.pool_pressure("t", k));
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::from_seed(1);
        let b = FaultInjector::from_seed(2);
        let fire_a: Vec<bool> = (0..4_000).map(|k| a.disk_error("t", k, 0)).collect();
        let fire_b: Vec<bool> = (0..4_000).map(|k| b.disk_error("t", k, 0)).collect();
        assert_ne!(fire_a, fire_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig {
            disk_error_rate: 0.2,
            ..FaultConfig::profile(7, FaultProfile::Moderate)
        };
        let f = FaultInjector::new(cfg);
        let n = 20_000u64;
        let fired = (0..n).filter(|&k| f.disk_error("t", k, 0)).count() as f64;
        let rate = fired / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn attempts_are_independent_draws() {
        // A key that fails at attempt 0 must be able to pass at a later
        // attempt — that's what makes retry meaningful.
        let f = FaultInjector::new(FaultConfig {
            disk_error_rate: 0.5,
            ..FaultConfig::profile(3, FaultProfile::Moderate)
        });
        let mut recovered = 0;
        for k in 0..200 {
            if f.disk_error("t", k, 0) && !f.disk_error("t", k, 1) {
                recovered += 1;
            }
        }
        assert!(recovered > 10, "retries never clear: {recovered}");
    }

    #[test]
    fn counters_track_recovery_notes() {
        let f = FaultInjector::from_seed(9);
        f.note_retry();
        f.note_retry();
        f.note_retry_success();
        f.note_degradation();
        f.note_stall_ms(30);
        let s = f.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.retry_successes, 1);
        assert_eq!(s.degradations, 1);
        assert_eq!(s.stall_ms_total, 30);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn clones_share_counters() {
        let f = FaultInjector::from_seed(11);
        let g = f.clone();
        g.note_retry();
        assert_eq!(f.stats().retries, 1);
    }

    #[test]
    fn clock_stamps_events_and_equality_ignores_timestamps() {
        let cfg = FaultConfig {
            disk_error_rate: 1.0,
            ..FaultConfig::quiescent(3)
        };
        // No clock attached: events carry no timestamp.
        let bare = FaultInjector::new(cfg.clone());
        assert!(bare.disk_error("t", 0, 0));
        assert_eq!(bare.events()[0].t_us, None);
        // Clock attached: events are stamped, monotonically.
        let stamped = FaultInjector::new(cfg.clone());
        stamped.set_clock(lm_trace::TraceClock::start());
        assert!(stamped.disk_error("t", 0, 0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(stamped.disk_error("t", 1, 0));
        let ev = stamped.events();
        let (a, b) = (ev[0].t_us.unwrap(), ev[1].t_us.unwrap());
        assert!(b > a, "stamps must advance: {a} then {b}");
        // Determinism assertions survive wall-clock stamps: same seed,
        // different clocks, equal event logs.
        let again = FaultInjector::new(cfg);
        again.set_clock(lm_trace::TraceClock::start());
        assert!(again.disk_error("t", 0, 0));
        assert!(again.disk_error("t", 1, 0));
        assert_eq!(stamped.events(), again.events());
    }

    #[test]
    fn flight_tee_records_injected_faults() {
        let f = FaultInjector::new(FaultConfig {
            disk_error_rate: 1.0,
            ..FaultConfig::quiescent(3)
        });
        let flight = lm_trace::FlightRecorder::new(16);
        f.set_flight(flight.clone());
        assert!(f.disk_error("engine.load_layer", 4, 1));
        assert_eq!(flight.len(), 1);
        assert!(flight.trigger("test", 0, lm_trace::MetricsSnapshot::default()));
        let d = flight.dump().unwrap();
        assert_eq!(d.events[0].category, "fault");
        assert_eq!(d.events[0].label, "disk_io site=engine.load_layer key=4 attempt=1");
        // Disabled injector: attaching a recorder is a no-op.
        let off = FaultInjector::disabled();
        let fr = lm_trace::FlightRecorder::new(4);
        off.set_flight(fr.clone());
        assert!(!off.disk_error("t", 0, 0));
        assert_eq!(fr.len(), 0);
    }

    #[test]
    fn stats_serialise_round_trip() {
        let f = FaultInjector::from_seed(5);
        f.note_retry();
        let s = f.stats();
        let v = serde::Serialize::serialize(&s);
        let back: FaultStats = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, s);
    }
}
