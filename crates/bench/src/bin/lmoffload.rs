//! `lmoffload` — the user-facing planning CLI: ask the performance models
//! what to do for a model on a platform, without running anything.
//!
//! Usage:
//!   lmoffload advise   <model> [--prompt N] [--gen N]
//!   lmoffload plan     <model> [--prompt N] [--gen N]
//!   lmoffload capacity <model>
//!   lmoffload compare  <model> [--prompt N] [--gen N] [--gpus G]
//!   lmoffload whatif   <model> [--prompt N] [--gen N]
//!   lmoffload models
//!
//! `<model>` is a preset name (case-insensitive), e.g. OPT-30B, LLaMA-65B.
//! The platform is the paper's single-GPU A100 box unless `--gpus G`
//! selects the multi-GPU V100 platform.

use lm_bench::table::{f, render};
use lm_hardware::presets as hw;
use lm_models::{presets as models, DType, Footprint, ModelConfig, Workload};
use lm_offload::{
    derive_plan, run_framework, run_pipeline, transfer_tasks, whatif_sweep, Advisor, Axis,
    EngineConfig, Framework, QuantCostParams,
};
use lm_sim::{fits, max_gpu_batch, AttentionPlacement, Policy};

struct Args {
    command: String,
    model: Option<String>,
    prompt: u64,
    gen: u64,
    gpus: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        model: None,
        prompt: 64,
        gen: 32,
        gpus: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--prompt" => args.prompt = it.next().and_then(|v| v.parse().ok()).unwrap_or(64),
            "--gen" => args.gen = it.next().and_then(|v| v.parse().ok()).unwrap_or(32),
            "--gpus" => args.gpus = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            other if args.command.is_empty() => args.command = other.to_string(),
            other => args.model = Some(other.to_string()),
        }
    }
    args
}

fn resolve_model(name: Option<&str>) -> ModelConfig {
    match name.and_then(models::by_name) {
        Some(m) => m,
        None => {
            if let Some(n) = name {
                eprintln!("unknown model '{n}'; try `lmoffload models`");
                std::process::exit(2);
            }
            models::opt_30b()
        }
    }
}

fn cmd_models() {
    let rows: Vec<Vec<String>> = models::all_presets()
        .iter()
        .filter(|m| m.name != "tiny-test")
        .map(|m| {
            vec![
                m.name.clone(),
                m.num_layers.to_string(),
                m.hidden.to_string(),
                m.ffn_hidden.to_string(),
                format!("{:.1}B", m.total_params() as f64 / 1e9),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["model", "layers", "h1", "h2", "params"], &rows)
    );
}

fn cmd_advise(model: &ModelConfig, prompt: u64, gen: u64) {
    let platform = hw::single_gpu_a100();
    let w = Workload::new(prompt, gen, 64, 10);
    let advisor = Advisor::new(&platform, model, &w, QuantCostParams::lm_offload_kernels());
    let mut gpu = Policy::flexgen_default();
    gpu.attention = AttentionPlacement::Gpu;

    println!("advisory for {} (s={prompt}, n={gen}, bls={}):", model.name, w.block_size());
    let wq = advisor.weight_quantization(gpu);
    println!(
        "  weight quantization (GPU attention): {:<14} ({:.1}s -> {:.1}s)",
        if wq.beneficial { "BENEFICIAL" } else { "not beneficial" },
        wq.baseline_cost,
        wq.candidate_cost
    );
    let kq = advisor.kv_quantization(gpu);
    println!(
        "  KV-cache quantization (GPU attention): {:<12} ({:.1}s -> {:.1}s)",
        if kq.beneficial { "BENEFICIAL" } else { "not beneficial" },
        kq.baseline_cost,
        kq.candidate_cost
    );
    let ao = advisor.attention_offloading(Policy::flexgen_default());
    println!(
        "  attention offloading (best quant each side): {:<6} (GPU {:.1}s vs CPU {:.1}s)",
        if ao.beneficial { "BENEFICIAL" } else { "not beneficial" },
        ao.baseline_cost,
        ao.candidate_cost
    );
}

fn cmd_plan(model: &ModelConfig, prompt: u64, gen: u64) {
    let platform = hw::single_gpu_a100();
    let w = Workload::new(prompt, gen, 64, 10);
    let policy = Policy::flexgen_default();
    let out = derive_plan(&platform, model, &w, &policy);
    println!("Algorithm 3 plan for {} on {}:", model.name, platform.name);
    println!(
        "  inter-op: {} total = {} compute + 5 transfers",
        out.plan.inter_op_total, out.plan.inter_op_compute
    );
    println!("  intra-op: {} threads per compute operator", out.plan.intra_op_compute);
    for (t, &g) in transfer_tasks(&platform, model, &w, &policy)
        .iter()
        .zip(&out.plan.transfer_threads)
    {
        println!("    {:<18} {:>12} B -> {g} threads", t.name, t.bytes);
    }
    println!(
        "  estimated step: {:.1} ms (default threading: {:.1} ms, {:+.0}%)",
        out.plan.est_step_time * 1e3,
        out.default_step_time * 1e3,
        (out.plan.est_step_time / out.default_step_time - 1.0) * 100.0
    );
}

fn cmd_capacity(model: &ModelConfig) {
    let platform = hw::single_gpu_a100();
    let base = Workload::new(64, 32, 64, 10);
    let fp16 = Footprint::compute(model, &base, DType::F16, DType::F16);
    let int4 = Footprint::compute(model, &base, DType::Int4, DType::Int4);
    println!("capacity report for {} on {}:", model.name, platform.name);
    println!(
        "  weights {:.0} GiB fp16 / {:.0} GiB int4; KV (bls=640, n=32) {:.0} GiB fp16 / {:.0} GiB int4",
        fp16.weights as f64 / (1u64 << 30) as f64,
        int4.weights as f64 / (1u64 << 30) as f64,
        fp16.kv_cache as f64 / (1u64 << 30) as f64,
        int4.kv_cache as f64 / (1u64 << 30) as f64,
    );
    for (name, policy) in [
        (
            "all-on-GPU fp16",
            Policy {
                wg: 1.0,
                cg: 1.0,
                hg: 1.0,
                weights_dtype: DType::F16,
                kv_dtype: DType::F16,
                attention: AttentionPlacement::Gpu,
            },
        ),
        ("offload fp16 (FlexGen default)", Policy::flexgen_default()),
        (
            "offload + int4 (LM-Offload)",
            Policy {
                weights_dtype: DType::Int4,
                kv_dtype: DType::Int4,
                attention: AttentionPlacement::Gpu,
                ..Policy::flexgen_default()
            },
        ),
    ] {
        let verdict = if !fits(model, &base, &platform, &policy) {
            "does not fit".to_string()
        } else {
            match max_gpu_batch(model, &base, &platform, &policy, 64, 4096) {
                Some(b) => format!("fits, max per-GPU batch {b}"),
                None => "fits".to_string(),
            }
        };
        println!("  {name:<32} {verdict}");
    }
}

fn cmd_compare(model: &ModelConfig, prompt: u64, gen: u64, gpus: u32) {
    if gpus > 1 {
        let platform = hw::multi_gpu_v100(gpus);
        let cfg = EngineConfig::new(&platform, model, prompt, gen);
        println!("pipeline comparison on {gpus}x V100:");
        for fw in Framework::ALL {
            match run_pipeline(fw, &cfg, gpus) {
                Some(r) => println!("  {:<15} {:>9.1} tok/s", fw.name(), r.throughput),
                None => println!("  {:<15} no feasible deployment", fw.name()),
            }
        }
        return;
    }
    let platform = hw::single_gpu_a100();
    let cfg = EngineConfig::new(&platform, model, prompt, gen);
    let rows: Vec<Vec<String>> = Framework::ALL
        .iter()
        .filter_map(|&fw| {
            run_framework(fw, &cfg).map(|run| {
                let p = run.deployment.policy;
                vec![
                    fw.name().to_string(),
                    run.deployment.workload.block_size().to_string(),
                    format!("{:.0}%", p.wg * 100.0),
                    format!("{}b/{}b", p.weights_dtype.bits(), p.kv_dtype.bits()),
                    match p.attention {
                        AttentionPlacement::Cpu => "CPU".into(),
                        AttentionPlacement::Gpu => "GPU".into(),
                    },
                    f(run.mem.total_bytes as f64 / (1u64 << 30) as f64, 0),
                    f(run.throughput(), 1),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        render(
            &["framework", "block", "wg", "w/kv", "attn", "mem GiB", "tok/s"],
            &rows
        )
    );
}

fn cmd_whatif(model: &ModelConfig, prompt: u64, gen: u64) {
    let platform = hw::single_gpu_a100();
    let factors = [0.5, 1.0, 2.0, 4.0];
    println!(
        "sensitivity of {} (s={prompt}, n={gen}); policy re-searched per point:",
        model.name
    );
    for axis in Axis::ALL {
        let c = whatif_sweep(axis, &platform, model, prompt, gen, &factors);
        let series: Vec<String> = c
            .points
            .iter()
            .map(|p| format!("{:.1}x->{:.0}t/s", p.factor, p.throughput))
            .collect();
        println!(
            "  {:<15} {}  (gain {:.2}x{})",
            c.axis,
            series.join("  "),
            c.end_to_end_gain(),
            if c.policy_changes() { ", policy shifts" } else { "" }
        );
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "models" => cmd_models(),
        "advise" => cmd_advise(&resolve_model(args.model.as_deref()), args.prompt, args.gen),
        "plan" => cmd_plan(&resolve_model(args.model.as_deref()), args.prompt, args.gen),
        "capacity" => cmd_capacity(&resolve_model(args.model.as_deref())),
        "whatif" => cmd_whatif(&resolve_model(args.model.as_deref()), args.prompt, args.gen),
        "compare" => cmd_compare(
            &resolve_model(args.model.as_deref()),
            args.prompt,
            args.gen,
            args.gpus,
        ),
        "" => {
            eprintln!("usage: lmoffload <advise|plan|capacity|compare|whatif|models> [model] [--prompt N] [--gen N] [--gpus G]");
            std::process::exit(2);
        }
        other => {
            eprintln!("unknown command '{other}'");
            std::process::exit(2);
        }
    }
}
