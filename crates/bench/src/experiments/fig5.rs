//! Figure 5 — inference performance under varying intra-op and inter-op
//! thread-level parallelism (OPT-30B, s=64, n=8, attention offloaded, no
//! quantization — the §4.1 characterisation study).

use lm_hardware::presets;
use lm_models::{presets as models, Workload};
use lm_offload::{transfer_tasks, DEFAULT_HEAD_GROUPS};
use lm_parallelism::{
    attention_block_graph, estimate_step_time, CpuScalingModel, ProfileTable, SearchConfig,
};
use lm_sim::Policy;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    pub threads: u32,
    /// Estimated decode-step time, seconds.
    pub step_time: f64,
    /// Relative throughput (1.0 = the sweep's best).
    pub relative_tput: f64,
}

/// Both Figure 5 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Varying intra-op threads at default inter-op (112).
    pub intra_sweep: Vec<SweepPoint>,
    /// Varying inter-op threads at default intra-op (56).
    pub inter_sweep: Vec<SweepPoint>,
}

fn normalise(points: &mut [SweepPoint]) {
    let best = points
        .iter()
        .map(|p| p.step_time)
        .fold(f64::INFINITY, f64::min);
    for p in points.iter_mut() {
        p.relative_tput = best / p.step_time;
    }
}

/// Run the experiment.
pub fn run() -> Fig5 {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::parallelism_study();
    let policy = Policy::flexgen_default();

    // The default inter-op pool sees operators from every batch of the
    // block at once, so the sweep runs over the whole-block graph.
    let graph = attention_block_graph(
        w.gpu_batch,
        w.num_batches,
        w.prompt_len + w.gen_len / 2,
        model.hidden,
        DEFAULT_HEAD_GROUPS,
    );
    let scaling = CpuScalingModel::from_cpu(&platform.cpu);
    let profile =
        ProfileTable::synthesize(&graph, &scaling, 20e9, 12e9, platform.cpu.total_threads());
    let cfg = SearchConfig::for_platform(&platform);
    let transfers = transfer_tasks(&platform, &model, &w, &policy);

    let eval = |intra: u32, inter: u32| {
        let (_, step) = estimate_step_time(
            &graph,
            &profile,
            &scaling,
            &cfg,
            &transfers,
            intra,
            inter,
            &[1, 1, 1, 1, 1],
        );
        step
    };

    let mut intra_sweep: Vec<SweepPoint> = [1u32, 2, 4, 8, 16, 24, 32, 48, 56]
        .iter()
        .map(|&t| SweepPoint {
            threads: t,
            step_time: eval(t, 112),
            relative_tput: 0.0,
        })
        .collect();
    let mut inter_sweep: Vec<SweepPoint> = [1u32, 2, 4, 8, 12, 16, 24, 48, 96, 112]
        .iter()
        .map(|&t| SweepPoint {
            threads: t,
            step_time: eval(56, t),
            relative_tput: 0.0,
        })
        .collect();
    normalise(&mut intra_sweep);
    normalise(&mut inter_sweep);
    Fig5 {
        intra_sweep,
        inter_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(points: &[SweepPoint], t: u32) -> f64 {
        points.iter().find(|p| p.threads == t).unwrap().relative_tput
    }

    #[test]
    fn intra_rises_then_saturates_above_eight() {
        // "the performance increases but becomes stable when the number
        // of threads is larger than 8."
        let f = run();
        assert!(at(&f.intra_sweep, 8) > at(&f.intra_sweep, 1) * 1.5);
        let s8 = at(&f.intra_sweep, 8);
        let s56 = at(&f.intra_sweep, 56);
        assert!(
            (s56 / s8 - 1.0).abs() < 0.30,
            "beyond 8 threads: {s8} -> {s56}"
        );
    }

    #[test]
    fn inter_peaks_near_twelve_then_drops() {
        // "the best performance is achieved when the inter-op parallelism
        // is 12. As we further increase it, the performance drops."
        let f = run();
        let best = f
            .inter_sweep
            .iter()
            .max_by(|a, b| a.relative_tput.partial_cmp(&b.relative_tput).unwrap())
            .unwrap();
        assert!(
            (8..=24).contains(&best.threads),
            "peak at {}",
            best.threads
        );
        assert!(at(&f.inter_sweep, 112) < best.relative_tput * 0.95);
        // And the paper's observed variance band: the worst setting loses
        // tens of percent versus the best ("up to 40%").
        let worst = f
            .inter_sweep
            .iter()
            .map(|p| p.relative_tput)
            .fold(f64::INFINITY, f64::min);
        assert!(worst < 0.9, "variance too small: worst {worst}");
    }

    #[test]
    fn normalisation_tops_at_one() {
        let f = run();
        for series in [&f.intra_sweep, &f.inter_sweep] {
            let max = series.iter().map(|p| p.relative_tput).fold(0.0, f64::max);
            assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
