//! Benches keep `unwrap` for fixture setup: a failed fixture should abort
//! the bench run loudly.
#![allow(clippy::unwrap_used)]

//! Benchmarks of the *real* offloading engine: decode steps with and
//! without the asynchronous weight prefetcher (the bundling-adjacent
//! ablation: does overlapping load_weight with compute pay off on real
//! hardware?), and the operator-bundling ablation on the real executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_models::presets;
use lm_parallelism::{attention_graph, bundle_small_ops, burn, Executor};
use lm_tensor::QuantConfig;

fn bench_engine_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_decode");
    g.sample_size(10);
    let cfg = presets::tiny_test();
    let prompts = vec![vec![1u32, 2, 3, 4]; 4];
    for (name, prefetch) in [("prefetch", true), ("serial_fetch", false)] {
        let engine = Engine::new(
            &cfg,
            42,
            EngineOptions {
                prefetch,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(name, |b| {
            b.iter(|| engine.run(&GenerateRequest::new(prompts.to_vec(), 4)).unwrap())
        });
    }
    // Quantized at rest: dequant-on-fetch cost vs smaller host footprint.
    let engine = Engine::new(
        &cfg,
        42,
        EngineOptions {
            quantize_at_rest: Some(QuantConfig::int4()),
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("int4_at_rest", |b| {
        b.iter(|| engine.run(&GenerateRequest::new(prompts.to_vec(), 4)).unwrap())
    });
    g.finish();
}

/// DESIGN.md §5 ablation: operator bundling. Execute the attention graph
/// on the real executor with per-op launch overhead dominated by many
/// tiny ops, bundled vs unbundled.
fn bench_bundling_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("bundling_ablation");
    g.sample_size(10);
    let graph = attention_graph(16, 64, 256, 7);
    let bundled = bundle_small_ops(&graph, 1e8).graph;
    eprintln!(
        "[ablation] bundling: {} ops -> {} ops",
        graph.len(),
        bundled.len()
    );
    for (name, gref) in [("unbundled", &graph), ("bundled", &bundled)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), gref, |b, gr| {
            b.iter(|| {
                Executor::new(4, 1).run(gr, |u, threads| {
                    burn(gr.nodes[u].flops * 1e-4, threads);
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_decode, bench_bundling_ablation);
criterion_main!(benches);
