//! Model-controlled threads.

use crate::sched::{
    ctx, payload_is_abort, payload_to_string, set_ctx, Scheduler,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
    sched: Option<Arc<Scheduler>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result (std-style:
    /// `Err` carries the panic payload).
    pub fn join(mut self) -> std::thread::Result<T> {
        if let (Some(sched), Some((_, my))) = (self.sched.take(), ctx()) {
            sched.join_wait(my, self.tid);
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        let taken = match self.result.lock() {
            Ok(mut g) => g.take(),
            Err(p) => p.into_inner().take(),
        };
        taken.unwrap_or_else(|| Err(Box::new("loom: thread produced no result")))
    }
}

/// Spawn a logical thread under the current model (or a plain OS thread
/// outside of one).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    if let Some((sched, my)) = ctx() {
        let tid = sched.register_thread();
        let sched2 = Arc::clone(&sched);
        let os = std::thread::spawn(move || {
            set_ctx(Arc::clone(&sched2), tid);
            sched2.wait_until_scheduled(tid);
            let r = catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = &r {
                if !payload_is_abort(p.as_ref()) {
                    sched2.record_failure(payload_to_string(p.as_ref()));
                }
            }
            match result2.lock() {
                Ok(mut g) => *g = Some(r),
                Err(poisoned) => *poisoned.into_inner() = Some(r),
            }
            sched2.finish_thread(tid);
        });
        // The spawn itself is a decision point: the child may run first.
        sched.yield_point(my);
        JoinHandle {
            tid,
            result,
            os: Some(os),
            sched: Some(sched),
        }
    } else {
        let os = std::thread::spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(f));
            match result2.lock() {
                Ok(mut g) => *g = Some(r),
                Err(poisoned) => *poisoned.into_inner() = Some(r),
            }
        });
        JoinHandle {
            tid: usize::MAX,
            result,
            os: Some(os),
            sched: None,
        }
    }
}

/// A voluntary preemption point.
pub fn yield_now() {
    if let Some((sched, my)) = ctx() {
        sched.yield_point(my);
    } else {
        std::thread::yield_now();
    }
}
