//! The disk tier end to end: a checkpoint written to real storage, loaded
//! into host memory (`T_init`), then generated from — with identical
//! outputs to an in-memory engine built from the same weights.

#![allow(clippy::unwrap_used)]
use lm_engine::{write_checkpoint, Engine, EngineOptions, GenerateRequest};
use lm_models::presets;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lmoffload-it-{name}-{}.ckpt", std::process::id()))
}

#[test]
fn disk_backed_engine_generates_like_in_memory() {
    let cfg = presets::tiny_test();
    let seed = 42u64;
    let path = tmp("gen");
    write_checkpoint(&cfg, seed, &path).unwrap();

    let (disk_engine, init) =
        Engine::from_checkpoint(&cfg, &path, EngineOptions::default()).unwrap();
    assert!(init.init_seconds > 0.0);
    assert!(init.bytes_read > 0);

    let mem_engine = Engine::new(&cfg, seed, EngineOptions::default()).unwrap();
    let prompts = [vec![3u32, 1, 4, 1], vec![2, 7, 1, 8]];
    let a = disk_engine.run(&GenerateRequest::new(prompts.to_vec(), 5)).unwrap();
    let b = mem_engine.run(&GenerateRequest::new(prompts.to_vec(), 5)).unwrap();
    // Same layer weights; the embedding tables differ by construction
    // seed, so compare layer behaviour via the weight traffic and run a
    // determinism check on the disk engine itself.
    assert_eq!(a.weight_bytes_streamed, b.weight_bytes_streamed);
    let a2 = disk_engine.run(&GenerateRequest::new(prompts.to_vec(), 5)).unwrap();
    assert_eq!(a.tokens, a2.tokens);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_mismatch_is_rejected() {
    let cfg = presets::tiny_test();
    let path = tmp("mismatch");
    write_checkpoint(&cfg, 1, &path).unwrap();
    let mut wrong = cfg.clone();
    wrong.num_layers += 1;
    assert!(Engine::from_checkpoint(&wrong, &path, EngineOptions::default()).is_err());
    let mut wrong_family = cfg.clone();
    wrong_family.family = lm_models::Family::Llama;
    assert!(Engine::from_checkpoint(&wrong_family, &path, EngineOptions::default()).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_engine_can_quantize_at_rest_on_load() {
    // Load from disk and compress into host memory in one pass — the
    // Eq. 3 pipeline (read, quantize once, serve compressed).
    let cfg = presets::tiny_test();
    let path = tmp("quant");
    write_checkpoint(&cfg, 9, &path).unwrap();
    let (engine, _) = Engine::from_checkpoint(
        &cfg,
        &path,
        EngineOptions {
            quantize_at_rest: Some(lm_tensor::QuantConfig::int4()),
            ..Default::default()
        },
    )
    .unwrap();
    let g = engine.run(&GenerateRequest::new(vec![vec![5, 6, 7]], 3)).unwrap();
    assert_eq!(g.tokens[0].len(), 3);
    // Compressed at rest => compressed in flight.
    let full = Engine::new(&cfg, 9, EngineOptions::default()).unwrap();
    let gf = full.run(&GenerateRequest::new(vec![vec![5, 6, 7]], 3)).unwrap();
    assert!(g.weight_bytes_streamed < gf.weight_bytes_streamed / 4);
    std::fs::remove_file(&path).ok();
}
