//! Figure 8 — effectiveness of thread-level parallelism control: per-task
//! execution time under default threading versus LM-Offload's plan
//! (OPT-30B, n=8), plus end-to-end time. The paper reports a 32% compute
//! reduction, 19% average task reduction and 38% end-to-end reduction.

use lm_hardware::presets;
use lm_models::{presets as models, Workload};
use lm_offload::{derive_plan, quant_aware_provider, QuantCostParams, ThreadFactors};
use lm_parallelism::ParallelismPlan;
use lm_sim::{simulate, simulate_traced, Policy};
use lm_trace::{render_gantt, TaskKind};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskTimeRow {
    pub task: String,
    pub default_secs: f64,
    pub controlled_secs: f64,
    pub reduction_pct: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    pub tasks: Vec<TaskTimeRow>,
    pub default_end_to_end: f64,
    pub controlled_end_to_end: f64,
    pub end_to_end_reduction_pct: f64,
    /// The plan the controller picked (inter-op 12 / intra-op ~16 on the
    /// paper's machine).
    pub plan: ParallelismPlan,
}

/// Run the experiment.
pub fn run() -> Fig8 {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::parallelism_study();
    let policy = Policy::flexgen_default();
    let params = QuantCostParams::flexgen_kernels();

    let sim_with = |threads: ThreadFactors| {
        let provider = quant_aware_provider(&platform, &model, &w, policy, params, threads);
        simulate(&provider, &w, model.num_layers)
    };
    let default = sim_with(ThreadFactors::Default);
    let controlled = sim_with(ThreadFactors::Controlled);

    let tasks = TaskKind::ALL
        .iter()
        .filter_map(|&k| {
            let d = default.breakdown.get(k);
            let c = controlled.breakdown.get(k);
            if d == 0.0 && c == 0.0 {
                return None; // task absent under this policy
            }
            Some(TaskTimeRow {
                task: k.name().to_string(),
                default_secs: d,
                controlled_secs: c,
                reduction_pct: (1.0 - c / d) * 100.0,
            })
        })
        .collect();

    let d_total = default.prefill_time + default.decode_time;
    let c_total = controlled.prefill_time + controlled.decode_time;
    let plan = derive_plan(&platform, &model, &w, &policy).plan;
    Fig8 {
        tasks,
        default_end_to_end: d_total,
        controlled_end_to_end: c_total,
        end_to_end_reduction_pct: (1.0 - c_total / d_total) * 100.0,
        plan,
    }
}

/// An ASCII Gantt of the first traced decode step under the controlled
/// setting — the visual counterpart of Fig. 8's overlap story.
pub fn gantt_first_step(width: usize) -> String {
    let platform = presets::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::parallelism_study();
    let provider = quant_aware_provider(
        &platform,
        &model,
        &w,
        Policy::flexgen_default(),
        QuantCostParams::flexgen_kernels(),
        ThreadFactors::Controlled,
    );
    let (report, spans) = simulate_traced(&provider, &w, model.num_layers, 1);
    // Keep the chart readable: the first few layers, aligned to the
    // decode window (weight prefetches that complete long before the
    // prefill ends would otherwise stretch the time axis).
    let window_start = report.prefill_time * 0.98;
    let subset: Vec<_> = spans
        .into_iter()
        .filter(|s| s.layer < 6 && s.end >= window_start)
        .collect();
    render_gantt(&subset, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_task_benefits_most() {
        // "The compute task benefits the most, with a 32% reduction."
        let f = run();
        let compute = f
            .tasks
            .iter()
            .find(|t| t.task == "compute_cpu")
            .expect("cpu compute present under attention offloading");
        assert!(
            compute.reduction_pct > 20.0,
            "compute reduction {:.0}%",
            compute.reduction_pct
        );
        let max = f
            .tasks
            .iter()
            .map(|t| t.reduction_pct)
            .fold(f64::MIN, f64::max);
        assert!(compute.reduction_pct >= max - 1e-9, "compute must lead");
    }

    #[test]
    fn end_to_end_reduction_substantial() {
        // Paper: 38% end-to-end reduction; require a clear double-digit
        // improvement.
        let f = run();
        assert!(
            f.end_to_end_reduction_pct > 15.0,
            "end-to-end {:.0}%",
            f.end_to_end_reduction_pct
        );
        assert!(f.controlled_end_to_end < f.default_end_to_end);
    }

    #[test]
    fn plan_matches_section_5_4() {
        let f = run();
        assert_eq!(f.plan.inter_op_total, 12);
        assert!((4..=16).contains(&f.plan.intra_op_compute));
    }

    #[test]
    fn gantt_renders_for_fig8() {
        let g = gantt_first_step(60);
        assert!(g.contains("H2D |"));
        assert!(g.contains("CPU |"));
    }

    #[test]
    fn every_task_improves_or_holds() {
        let f = run();
        for t in &f.tasks {
            assert!(
                t.reduction_pct >= -1e-9,
                "{} regressed: {:.1}%",
                t.task,
                t.reduction_pct
            );
        }
    }
}
