//! Minimal ASCII table rendering for the `repro` binary's output.

/// Render rows as an aligned ASCII table with a header.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, cell) in widths.iter().zip(cells) {
            s.push(' ');
            s.push_str(cell);
            s.push_str(&" ".repeat(w - cell.len() + 1));
            s.push('|');
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

/// Format a float with `digits` decimals.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "{t}");
        assert!(t.contains("| long-name |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
