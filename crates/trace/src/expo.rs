//! Prometheus / OpenMetrics text exposition for a [`MetricsSnapshot`]
//! (DESIGN.md §13): counters render as `counter` families, gauges as
//! `gauge`, and histogram digests as `summary` families (quantile series
//! plus `_sum`/`_count`), with the digest's min/max carried as adjacent
//! gauges so a summary round-trips losslessly through the text form.
//!
//! Metric names are sanitised to the exposition charset (`[a-zA-Z0-9_:]`;
//! dots become underscores), families are emitted in sanitised-name
//! order, and floats print in Rust's shortest-round-trip form — so
//! `render(parse(render(s))?) == render(s)` byte for byte, which the
//! `repro obs` gate checks on every run.

use crate::metrics::{HistogramSummary, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A malformed exposition document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoError {
    /// 1-based line number of the offending line.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ExpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpoError {}

/// Map a metric name onto the exposition charset: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a
/// `_` prefix. Idempotent; distinct registry names that collide after
/// sanitisation (e.g. `a.b` vs `a_b`) merge last-writer-wins.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Shortest f64 form that `str::parse::<f64>` recovers bit-exactly.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Render a snapshot as Prometheus text exposition, `# EOF`-terminated.
pub fn render(snap: &MetricsSnapshot) -> String {
    let counters: BTreeMap<String, u64> = snap
        .counters
        .iter()
        .map(|(k, v)| (sanitize_name(k), *v))
        .collect();
    let gauges: BTreeMap<String, f64> = snap
        .gauges
        .iter()
        .map(|(k, v)| (sanitize_name(k), *v))
        .collect();
    let histograms: BTreeMap<String, &HistogramSummary> = snap
        .histograms
        .iter()
        .map(|(k, v)| (sanitize_name(k), v))
        .collect();

    let mut out = String::new();
    for (name, v) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(*v));
    }
    for (name, h) in &histograms {
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", fmt_f64(h.p50));
        let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", fmt_f64(h.p95));
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", fmt_f64(h.p99));
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {name}_min gauge");
        let _ = writeln!(out, "{name}_min {}", fmt_f64(h.min));
        let _ = writeln!(out, "# TYPE {name}_max gauge");
        let _ = writeln!(out, "{name}_max {}", fmt_f64(h.max));
    }
    out.push_str("# EOF\n");
    out
}

#[derive(Default)]
struct PartialSummary {
    p50: f64,
    p95: f64,
    p99: f64,
    sum: f64,
    count: u64,
}

/// Parse a text exposition back into a snapshot. Names stay in their
/// sanitised form (the dot→underscore map is not invertible); `_min` /
/// `_max` gauges that shadow a summary fold back into its digest, and
/// `mean` is recomputed as `sum / count` — exactly how the registry
/// derives it, so a rendered snapshot parses back equal.
pub fn parse(text: &str) -> Result<MetricsSnapshot, ExpoError> {
    let err = |line: usize, message: &str| ExpoError {
        line,
        message: message.to_string(),
    };
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut partial: BTreeMap<String, PartialSummary> = BTreeMap::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if comment == "EOF" {
                break;
            }
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| err(lineno, "TYPE line without a metric name"))?;
                let kind = it
                    .next()
                    .ok_or_else(|| err(lineno, "TYPE line without a metric type"))?;
                types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and other comments are ignored
        }

        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(lineno, "sample line without a value"))?;
        let (name, quantile) = match series.split_once('{') {
            Some((n, labels)) => {
                let q = labels
                    .strip_suffix('}')
                    .and_then(|l| l.strip_prefix("quantile=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| err(lineno, "unsupported label set (only quantile=\"q\")"))?;
                (n, Some(q))
            }
            None => (series, None),
        };

        // A summary's _sum/_count series belong to the base family.
        let (family, suffix) = match types.get(name) {
            Some(_) => (name, None),
            None => {
                if let Some(base) = name.strip_suffix("_sum") {
                    (base, Some("sum"))
                } else if let Some(base) = name.strip_suffix("_count") {
                    (base, Some("count"))
                } else {
                    (name, None)
                }
            }
        };
        let kind = types
            .get(family)
            .ok_or_else(|| err(lineno, "sample for a metric with no TYPE declaration"))?
            .clone();
        match (kind.as_str(), suffix, quantile) {
            ("counter", None, None) => {
                let v = value
                    .parse::<u64>()
                    .map_err(|_| err(lineno, "counter value is not a u64"))?;
                counters.insert(family.to_string(), v);
            }
            ("gauge", None, None) => {
                let v = value
                    .parse::<f64>()
                    .map_err(|_| err(lineno, "gauge value is not an f64"))?;
                gauges.insert(family.to_string(), v);
            }
            ("summary", suffix, quantile) => {
                let entry = partial.entry(family.to_string()).or_default();
                match (suffix, quantile) {
                    (Some("count"), None) => {
                        entry.count = value
                            .parse::<u64>()
                            .map_err(|_| err(lineno, "summary count is not a u64"))?;
                    }
                    (Some("sum"), None) => {
                        entry.sum = value
                            .parse::<f64>()
                            .map_err(|_| err(lineno, "summary sum is not an f64"))?;
                    }
                    (None, Some(q)) => {
                        let v = value
                            .parse::<f64>()
                            .map_err(|_| err(lineno, "quantile value is not an f64"))?;
                        match q {
                            "0.5" => entry.p50 = v,
                            "0.95" => entry.p95 = v,
                            "0.99" => entry.p99 = v,
                            _ => return Err(err(lineno, "unsupported summary quantile")),
                        }
                    }
                    _ => return Err(err(lineno, "malformed summary sample")),
                }
            }
            _ => return Err(err(lineno, "unsupported metric type or label set")),
        }
    }

    let mut histograms: BTreeMap<String, HistogramSummary> = BTreeMap::new();
    for (name, p) in partial {
        let min = gauges.remove(&format!("{name}_min")).unwrap_or(0.0);
        let max = gauges.remove(&format!("{name}_max")).unwrap_or(0.0);
        histograms.insert(
            name,
            HistogramSummary {
                count: p.count,
                sum: p.sum,
                mean: if p.count == 0 { 0.0 } else { p.sum / p.count as f64 },
                min,
                max,
                p50: p.p50,
                p95: p.p95,
                p99: p.p99,
            },
        );
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter_add("serve.admitted", 12);
        r.counter_add("serve.shed", 3);
        r.gauge_set("serve.queue_depth", 4.0);
        r.gauge_set("pool.occupancy", 0.875);
        for v in [0.01, 0.02, 0.02, 0.4] {
            r.histogram_record("serve.ttft_s", v);
        }
        r.snapshot()
    }

    #[test]
    fn renders_typed_families_in_sorted_order() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE serve_admitted counter\nserve_admitted 12\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 4\n"));
        assert!(text.contains("# TYPE serve_ttft_s summary\n"));
        assert!(text.contains("serve_ttft_s{quantile=\"0.5\"} "));
        assert!(text.contains("serve_ttft_s_count 4\n"));
        assert!(text.ends_with("# EOF\n"));
        let counter_pos = text.find("serve_admitted").unwrap();
        let gauge_pos = text.find("pool_occupancy").unwrap();
        assert!(counter_pos < gauge_pos || text.find("# TYPE pool_occupancy").unwrap() > 0);
    }

    #[test]
    fn parse_recovers_the_snapshot() {
        let snap = sample_snapshot();
        let back = parse(&render(&snap)).unwrap();
        assert_eq!(back.counters["serve_admitted"], 12);
        assert_eq!(back.counters["serve_shed"], 3);
        assert_eq!(back.gauges["serve_queue_depth"], 4.0);
        assert_eq!(back.gauges["pool_occupancy"], 0.875);
        let h = &back.histograms["serve_ttft_s"];
        let orig = &snap.histograms["serve.ttft_s"];
        assert_eq!(h, orig);
    }

    #[test]
    fn render_parse_rerender_is_byte_identical() {
        let text = render(&sample_snapshot());
        let rerendered = render(&parse(&text).unwrap());
        assert_eq!(text, rerendered);
    }

    #[test]
    fn sanitisation_is_idempotent_and_ordering_is_by_sanitised_name() {
        assert_eq!(sanitize_name("serve.ttft_s"), "serve_ttft_s");
        assert_eq!(sanitize_name(sanitize_name("a.b-c").as_str()), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        // "a.b" sorts before "aZb" raw but after it sanitised; render must
        // emit by sanitised order or re-render reorders.
        let r = MetricsRegistry::new();
        r.counter_add("a.b", 1);
        r.counter_add("aZb", 2);
        let text = render(&r.snapshot());
        assert!(text.find("aZb").unwrap() < text.find("a_b").unwrap());
        assert_eq!(text, render(&parse(&text).unwrap()));
    }

    #[test]
    fn empty_single_sample_and_saturating_histograms_round_trip() {
        let r = MetricsRegistry::new();
        r.histogram("empty"); // registered, never recorded
        r.histogram_record("single", 0.25);
        // Saturate both ends of the bucket range.
        r.histogram_record("extreme", 1e300);
        r.histogram_record("extreme", 1e-300);
        r.histogram_record("extreme", f64::NAN);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["empty"].count, 0);
        assert_eq!(snap.histograms["empty"].p99, 0.0);
        assert_eq!(snap.histograms["single"].count, 1);
        assert_eq!(snap.histograms["single"].min, 0.25);
        assert_eq!(snap.histograms["single"].max, 0.25);
        let text = render(&snap);
        let back = parse(&text).unwrap();
        assert_eq!(back.histograms["empty"], snap.histograms["empty"]);
        assert_eq!(back.histograms["single"], snap.histograms["single"]);
        assert_eq!(back.histograms["extreme"], snap.histograms["extreme"]);
        assert_eq!(text, render(&back));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("no_type_decl 3\n").is_err());
        assert!(parse("# TYPE c counter\nc notanumber\n").is_err());
        assert!(parse("# TYPE s summary\ns{quantile=\"0.7\"} 1\n").is_err());
        assert!(parse("# TYPE g gauge\ng\n").is_err());
        let e = parse("# TYPE c counter\nc 1.5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn eof_terminates_parsing() {
        let text = "# TYPE c counter\nc 1\n# EOF\ngarbage that would error\n";
        let snap = parse(text).unwrap();
        assert_eq!(snap.counters["c"], 1);
    }
}
