//! Workspace root for the LM-Offload reproduction: re-exports the member
//! crates so the integration tests in `tests/` and the runnable examples
//! in `examples/` can span them. See README.md for the tour and DESIGN.md
//! for the system inventory.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub use lm_baselines as baselines;
pub use lm_bench as bench;
pub use lm_cachesim as cachesim;
pub use lm_engine as engine;
pub use lm_hardware as hardware;
pub use lm_models as models;
pub use lm_offload as offload;
pub use lm_parallelism as parallelism;
pub use lm_sim as sim;
pub use lm_tensor as tensor;
