//! Bounded memory pools emulating the two memory tiers of the offloading
//! runtime: "device" (GPU-like, small) and "host" (CPU, large). Every
//! tensor the engine materialises is charged to a pool; exceeding a
//! pool's capacity is a hard error, which is how the tests prove the
//! engine really runs within the device budget it claims.

use lm_fault::FaultInjector;
use parking_lot::Mutex;
use std::sync::Arc;

/// A bounded byte-accounted memory pool.
#[derive(Debug)]
pub struct MemPool {
    name: String,
    capacity: usize,
    inner: Mutex<PoolState>,
    /// Injects transient pressure spikes (see [`MemPool::attach_fault`]);
    /// disabled by default, making every probe an inlined `None` check.
    fault: Mutex<FaultInjector>,
}

#[derive(Debug, Default)]
struct PoolState {
    used: usize,
    peak: usize,
    allocs: u64,
    /// Allocation *attempts* (incl. failed ones) — the fault-decision key,
    /// so a retried allocation gets a fresh draw and pressure can clear.
    probes: u64,
}

/// Error returned when an allocation would exceed the pool's capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolExhausted {
    pub pool: String,
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool '{}' exhausted: requested {} with {}/{} in use",
            self.pool, self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// An RAII lease of pool bytes: freed on drop.
#[derive(Debug)]
pub struct Lease {
    pool: Arc<MemPool>,
    bytes: usize,
}

impl Lease {
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.pool.inner.lock();
        debug_assert!(st.used >= self.bytes, "pool accounting underflow");
        st.used -= self.bytes;
    }
}

impl MemPool {
    pub fn new(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Arc::new(MemPool {
            name: name.into(),
            capacity,
            inner: Mutex::new(PoolState::default()),
            fault: Mutex::new(FaultInjector::disabled()),
        })
    }

    /// Attach a fault injector: subsequent allocations may observe
    /// transient pressure spikes (bytes squatting in the pool for the
    /// duration of one attempt). A disabled injector restores the
    /// fault-free behaviour exactly.
    pub fn attach_fault(&self, fault: FaultInjector) {
        *self.fault.lock() = fault;
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> usize {
        self.inner.lock().peak
    }

    pub fn alloc_count(&self) -> u64 {
        self.inner.lock().allocs
    }

    /// Reserve `bytes`, returning an RAII lease or an error when the pool
    /// cannot hold them. With a fault injector attached, a pressure spike
    /// may transiently shrink the capacity seen by this one attempt.
    pub fn alloc(self: &Arc<Self>, bytes: usize) -> Result<Lease, PoolExhausted> {
        let fault = self.fault.lock().clone();
        let mut st = self.inner.lock();
        st.probes += 1;
        let capacity = match fault.pool_pressure(
            if self.name == "device" { "pool.device" } else { "pool.host" },
            st.probes,
        ) {
            Some(spike) => self.capacity.saturating_sub(spike as usize),
            None => self.capacity,
        };
        if st.used + bytes > capacity {
            return Err(PoolExhausted {
                pool: self.name.clone(),
                requested: bytes,
                used: st.used,
                capacity,
            });
        }
        st.used += bytes;
        st.peak = st.peak.max(st.used);
        st.allocs += 1;
        Ok(Lease {
            pool: Arc::clone(self),
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_balance() {
        let p = MemPool::new("device", 100);
        let a = p.alloc(60).unwrap();
        assert_eq!(p.used(), 60);
        let b = p.alloc(40).unwrap();
        assert_eq!(p.used(), 100);
        drop(a);
        assert_eq!(p.used(), 40);
        drop(b);
        assert_eq!(p.used(), 0);
        assert_eq!(p.peak(), 100);
        assert_eq!(p.alloc_count(), 2);
    }

    #[test]
    fn overflow_rejected_without_state_change() {
        let p = MemPool::new("device", 100);
        let _a = p.alloc(80).unwrap();
        let err = p.alloc(21).unwrap_err();
        assert_eq!(err.used, 80);
        assert_eq!(err.capacity, 100);
        assert_eq!(p.used(), 80, "failed alloc must not leak");
        // Exactly-fitting allocation still works.
        let _b = p.alloc(20).unwrap();
        assert_eq!(p.used(), 100);
    }

    #[test]
    fn zero_byte_lease_is_fine() {
        let p = MemPool::new("x", 0);
        let l = p.alloc(0).unwrap();
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn error_formats_usefully() {
        let p = MemPool::new("device", 10);
        let e = p.alloc(11).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("device") && msg.contains("11"));
    }

    #[test]
    fn pressure_spike_shrinks_one_attempt_then_clears() {
        use lm_fault::FaultConfig;
        // Rate 1.0 with a spike bigger than the pool: every attempt fails.
        let p = MemPool::new("device", 100);
        p.attach_fault(FaultInjector::new(FaultConfig {
            pool_pressure_rate: 1.0,
            pool_pressure_bytes: 1000,
            ..FaultConfig::quiescent(3)
        }));
        assert!(p.alloc(1).is_err());
        // Detach: behaviour returns to normal, nothing leaked.
        p.attach_fault(FaultInjector::disabled());
        let l = p.alloc(100).unwrap();
        assert_eq!(p.used(), 100);
        drop(l);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn pressure_retries_get_fresh_draws() {
        use lm_fault::FaultConfig;
        let p = MemPool::new("device", 100);
        let f = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 0.5,
            pool_pressure_bytes: 1000,
            ..FaultConfig::quiescent(7)
        });
        p.attach_fault(f.clone());
        // Keyed by attempt count, a failing alloc eventually succeeds.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 64, "pressure never cleared");
            if p.alloc(10).is_ok() {
                break;
            }
        }
        assert!(f.stats().pool_pressure_spikes >= (attempts - 1) as u64);
    }

    #[test]
    fn leases_are_send_across_threads() {
        let p = MemPool::new("device", 1000);
        let lease = p.alloc(500).unwrap();
        let p2 = Arc::clone(&p);
        std::thread::spawn(move || {
            assert_eq!(p2.used(), 500);
            drop(lease);
        })
        .join()
        .unwrap();
        assert_eq!(p.used(), 0);
    }

    mod properties {
        use super::*;
        use lm_fault::FaultConfig;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Under concurrent alloc/free churn with injected pressure
            /// spikes, the pool's accounting never goes negative (drop
            /// would panic its underflow debug_assert), the peak stays
            /// within capacity, and every lease release is reflected:
            /// the pool drains to exactly zero.
            #[test]
            fn concurrent_churn_with_faults_keeps_accounting_exact(
                capacity in 10_000usize..100_000,
                sizes in proptest::collection::vec(1usize..8_000, 4..48),
                seed in 0u64..1_000,
            ) {
                let p = MemPool::new("device", capacity);
                p.attach_fault(FaultInjector::new(FaultConfig {
                    pool_pressure_rate: 0.3,
                    pool_pressure_bytes: (capacity / 2) as u64,
                    ..FaultConfig::quiescent(seed)
                }));
                let granted = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for chunk in sizes.chunks(sizes.len().div_ceil(4)) {
                        let p = Arc::clone(&p);
                        let granted = &granted;
                        s.spawn(move || {
                            for &b in chunk {
                                match p.alloc(b) {
                                    Ok(lease) => {
                                        granted.fetch_add(
                                            1,
                                            std::sync::atomic::Ordering::Relaxed,
                                        );
                                        assert!(p.used() <= capacity);
                                        assert_eq!(lease.bytes(), b);
                                        drop(lease);
                                    }
                                    Err(e) => {
                                        // A rejected alloc must not leak.
                                        assert!(e.requested == b);
                                    }
                                }
                            }
                        });
                    }
                });
                prop_assert_eq!(p.used(), 0, "every lease must be released");
                prop_assert!(p.peak() <= capacity, "peak exceeded capacity");
                prop_assert_eq!(
                    p.alloc_count(),
                    granted.load(std::sync::atomic::Ordering::Relaxed) as u64
                );
            }
        }
    }
}
