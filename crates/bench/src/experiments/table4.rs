//! Table 4 — the evaluation platforms (configuration data, printed for
//! completeness of the per-experiment index).

use lm_hardware::{presets, to_gib, Platform};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformRow {
    pub platform: String,
    pub cpu: String,
    pub cores: u32,
    pub host_mem_gib: f64,
    pub gpu: String,
    pub num_gpus: u32,
    pub gpu_mem_gib: f64,
    pub interconnect: String,
    pub bidir_bw_gbps: f64,
}

fn row(p: &Platform) -> PlatformRow {
    PlatformRow {
        platform: p.name.clone(),
        cpu: p.cpu.name.clone(),
        cores: p.cpu.total_cores(),
        host_mem_gib: to_gib(p.cpu.mem_capacity),
        gpu: p.gpu.name.clone(),
        num_gpus: p.num_gpus,
        gpu_mem_gib: to_gib(p.gpu.mem_capacity),
        interconnect: p.link.name.clone(),
        bidir_bw_gbps: (p.link.h2d_bw + p.link.d2h_bw) / 1e9,
    }
}

/// Both Table 4 platforms.
pub fn run() -> Vec<PlatformRow> {
    vec![row(&presets::single_gpu_a100()), row(&presets::multi_gpu_v100(4))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table4() {
        let rows = run();
        assert_eq!(rows[0].cores, 56);
        assert_eq!(rows[0].host_mem_gib, 240.0);
        assert_eq!(rows[0].gpu_mem_gib, 40.0);
        assert_eq!(rows[0].bidir_bw_gbps, 64.0);
        assert_eq!(rows[1].cores, 44);
        assert_eq!(rows[1].num_gpus, 4);
        assert_eq!(rows[1].bidir_bw_gbps, 300.0);
    }
}
