//! End-to-end exercise of the `lm-verify` pipeline exactly as `repro
//! verify` runs it: the quick planner-space sweep must clear its floor
//! with zero lint-unsoundness witnesses, the seeded over-grant mutation
//! must surface as an `LMA291` witness, both protocol explorations must
//! cover every declared transition, and the assembled probe must pass
//! the `LMA29x` lints cleanly — deterministically, twice.

#![allow(clippy::unwrap_used)]

use lm_analyze::{lint_verify, LintCode};
use lm_verify::{
    build_probe, check_kvpool_protocol, check_scheduler_protocol, run_sweep, Mutation, SweepDepth,
    CONFIGS_FLOOR,
};
use loom::Options;

/// The `repro verify` exploration bounds (kept small here only via the
/// shared default preemption bound; the lane itself uses bound 3).
fn lane_opts() -> Options {
    Options {
        preemption_bound: 2,
        max_iterations: 50_000,
    }
}

#[test]
fn quick_sweep_clears_the_floor_with_zero_witnesses() {
    let sweep = run_sweep(SweepDepth::Quick, Mutation::None);
    assert!(
        sweep.configs >= CONFIGS_FLOOR,
        "quick lattice explored only {} configs",
        sweep.configs
    );
    assert!(
        sweep.unsoundness.is_empty(),
        "shipped planner produced lint-unsoundness witnesses: {:?}",
        sweep.unsoundness
    );
    // The lattice deliberately includes lint-reject regions (non-tiling
    // pages, sub-floor SLOs); every one of them must also fail ground
    // truth or be counted as incompleteness — never silently dropped.
    assert_eq!(
        sweep.configs,
        sweep.consistent + sweep.incompleteness + sweep.unsoundness.len() as u64,
        "sweep points must partition into the three verdict classes"
    );
}

#[test]
fn seeded_overgrant_mutation_becomes_an_lma291_witness() {
    let sweep = run_sweep(SweepDepth::Quick, Mutation::OvergrantPage);
    assert!(
        !sweep.unsoundness.is_empty(),
        "an admission over-granting one page per sequence must be caught"
    );
    let protocols = [
        check_kvpool_protocol(lane_opts()),
        check_scheduler_protocol(lane_opts()),
    ];
    let probe = build_probe(&sweep, &protocols);
    let report = lint_verify(&probe);
    assert!(
        report.has(LintCode::Lma291LintUnsoundnessWitness),
        "the witness must surface as LMA291: {report}"
    );
}

#[test]
fn protocol_explorations_cover_every_declared_transition() {
    for report in [
        check_kvpool_protocol(lane_opts()),
        check_scheduler_protocol(lane_opts()),
    ] {
        assert!(report.passed(), "{}: {:?}", report.name, report.failure);
        for t in &report.declared {
            assert!(
                report.exercised.contains(t),
                "{}: declared transition never exercised under the bound: {t}",
                report.name
            );
        }
        for t in &report.exercised {
            assert!(
                report.declared.contains(t),
                "{}: undeclared transition exercised (stale spec): {t}",
                report.name
            );
        }
    }
}

#[test]
fn assembled_probe_passes_the_lma29x_lints_and_is_deterministic() {
    let run = || {
        let sweep = run_sweep(SweepDepth::Quick, Mutation::None);
        let protocols = [
            check_kvpool_protocol(lane_opts()),
            check_scheduler_protocol(lane_opts()),
        ];
        build_probe(&sweep, &protocols)
    };
    let probe = run();
    let report = lint_verify(&probe);
    assert!(report.is_clean(), "{report}");
    assert!(probe.interleavings > 0);
    let a = serde_json::to_string(&probe).unwrap();
    let b = serde_json::to_string(&run()).unwrap();
    assert_eq!(a, b, "verification must be deterministic run-over-run");
}
