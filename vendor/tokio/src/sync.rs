//! Synchronization primitives: the bounded multi-producer single-consumer
//! channel (`tokio::sync::mpsc` subset).

pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Waker};

    /// Channel errors, mirroring `tokio::sync::mpsc::error`.
    pub mod error {
        /// The receiver was dropped; the value comes back to the caller.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        /// `try_send` failure: the buffer is full, or the receiver is
        /// gone. The value comes back either way.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            Full(T),
            Closed(T),
        }

        impl<T> std::fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "no available capacity"),
                    TrySendError::Closed(_) => write!(f, "channel closed"),
                }
            }
        }

        /// `try_recv` failure: nothing buffered, or every sender is gone.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            Empty,
            Disconnected,
        }

        impl std::fmt::Display for TryRecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self {
                    TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                    TryRecvError::Disconnected => write!(f, "receiving on a closed channel"),
                }
            }
        }
    }

    use error::{SendError, TryRecvError, TrySendError};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        rx_alive: bool,
        /// Single consumer: at most one parked `recv` future.
        recv_waker: Option<Waker>,
        /// Parked `send`-side futures/threads waiting on capacity.
        send_wakers: Vec<Waker>,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Blocking receivers park here.
        recv_cv: Condvar,
        /// Blocking senders park here.
        send_cv: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A poisoned channel mutex means a peer panicked while
            // holding it; the state itself is a plain queue, still valid.
            match self.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        fn wake_receiver(&self, st: &mut State<T>) {
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
            self.recv_cv.notify_one();
        }

        fn wake_senders(&self, st: &mut State<T>) {
            for w in st.send_wakers.drain(..) {
                w.wake();
            }
            self.send_cv.notify_all();
        }
    }

    /// Create a bounded channel. Panics on `buffer == 0`, as upstream
    /// does (a zero-capacity rendezvous is not an mpsc configuration).
    pub fn channel<T>(buffer: usize) -> (Sender<T>, Receiver<T>) {
        assert!(buffer > 0, "mpsc bounded channel requires buffer > 0");
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: buffer,
                senders: 1,
                rx_alive: true,
                recv_waker: None,
                send_wakers: Vec::new(),
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// The producing half. Clonable; the channel closes for the receiver
    /// when the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Non-blocking send: `Full` when the buffer is at capacity,
        /// `Closed` when the receiver is gone. The value is returned in
        /// the error either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.lock();
            if !st.rx_alive {
                return Err(TrySendError::Closed(value));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.chan.wake_receiver(&mut st);
            Ok(())
        }

        /// Send from synchronous code, parking the thread while the
        /// buffer is full — the backpressure edge `generate_stream`-style
        /// producers block on.
        pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if !st.rx_alive {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    self.chan.wake_receiver(&mut st);
                    return Ok(());
                }
                st = match self.chan.send_cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Whether the receiving half has been dropped.
        pub fn is_closed(&self) -> bool {
            !self.chan.lock().rx_alive
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // End-of-stream: a parked receiver must observe `None`.
                self.chan.wake_receiver(&mut st);
            }
        }
    }

    /// The consuming half. Dropping it closes the channel: buffered
    /// values are discarded and every later send fails `Closed` — which
    /// is exactly how a client disconnect surfaces to the serving layer.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive the next value, `.await`-ably. Resolves to `None`
        /// once every sender has dropped and the buffer is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { rx: self }
        }

        /// Receive from synchronous code, parking the thread while the
        /// channel is empty but still open.
        pub fn blocking_recv(&mut self) -> Option<T> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.wake_senders(&mut st);
                    return Some(v);
                }
                if st.senders == 0 {
                    return None;
                }
                st = match self.chan.recv_cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                self.chan.wake_senders(&mut st);
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.rx_alive = false;
            st.queue.clear();
            self.chan.wake_senders(&mut st);
        }
    }

    /// Future returned by [`Receiver::recv`].
    pub struct Recv<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let this = self.get_mut();
            let chan = Arc::clone(&this.rx.chan);
            let mut st = chan.lock();
            if let Some(v) = st.queue.pop_front() {
                chan.wake_senders(&mut st);
                return Poll::Ready(Some(v));
            }
            if st.senders == 0 {
                return Poll::Ready(None);
            }
            st.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}
