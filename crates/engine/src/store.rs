//! The offloaded weight store: layers live at rest in the host pool
//! (optionally group-quantized — FlexGen's compressed format), and are
//! *fetched* — dequantized and materialised against the bounded device
//! pool — for the duration of their use. Dropping the fetched layer frees
//! the device bytes, so the pool's peak proves how much "GPU memory" the
//! run really needed.

use crate::model::LayerWeights;
use crate::pools::{Lease, MemPool, PoolExhausted};
use lm_fault::{FaultInjector, RetryPolicy};
use lm_models::ModelConfig;
use lm_tensor::{Linear, QuantConfig, WeightStore as LinearStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A layer materialised into the device pool.
pub struct FetchedLayer {
    pub weights: LayerWeights,
    pub layer: u32,
    _lease: Lease,
}

/// The at-rest weight store.
pub struct OffloadStore {
    layers: Vec<Arc<LayerWeights>>,
    pub host: Arc<MemPool>,
    pub device: Arc<MemPool>,
    /// Bytes moved host→device over the store's lifetime (the real
    /// engine's `load_weight` traffic — comparable to the analytic
    /// model's per-token weight volume).
    fetched_bytes: AtomicU64,
    /// Injects transfer stalls into fetches; disabled by default.
    pub fault: FaultInjector,
    _host_lease: Lease,
}

/// At-rest weight precision of the host store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightsAtRest {
    /// Full f32 (test default).
    #[default]
    F32,
    /// Half precision — the paper's fp16 baseline.
    F16,
    /// Group-quantized (FlexGen's compressed format).
    Quantized(QuantConfig),
}

impl WeightsAtRest {
    /// Apply this precision to a layer in place.
    pub fn apply(self, layer: &mut LayerWeights) {
        match self {
            WeightsAtRest::F32 => {}
            WeightsAtRest::F16 => layer.halve(),
            WeightsAtRest::Quantized(q) => layer.quantize(q),
        }
    }
}

fn materialize_linear(l: &Linear) -> Linear {
    Linear {
        weight: LinearStore::Full(l.weight.materialize()),
        bias: l.bias.clone(),
        in_features: l.in_features,
        out_features: l.out_features,
    }
}

impl OffloadStore {
    /// Build synthetic weights for `cfg`, optionally quantized at rest,
    /// charging the host pool.
    pub fn synthesize(
        cfg: &ModelConfig,
        seed: u64,
        quantize_at_rest: Option<QuantConfig>,
        host: Arc<MemPool>,
        device: Arc<MemPool>,
    ) -> Result<Self, PoolExhausted> {
        let at_rest = match quantize_at_rest {
            Some(q) => WeightsAtRest::Quantized(q),
            None => WeightsAtRest::F32,
        };
        let layers =
            (0..cfg.num_layers).map(|i| LayerWeights::synthesize(cfg, i, seed));
        OffloadStore::from_layers(layers, at_rest, host, device)
    }

    /// Build from an explicit layer source (e.g. a disk checkpoint) at the
    /// requested at-rest precision, charging the host pool.
    pub fn from_layers(
        layers: impl IntoIterator<Item = LayerWeights>,
        at_rest: WeightsAtRest,
        host: Arc<MemPool>,
        device: Arc<MemPool>,
    ) -> Result<Self, PoolExhausted> {
        let mut stored = Vec::new();
        let mut total = 0usize;
        for mut w in layers {
            at_rest.apply(&mut w);
            total += w.bytes();
            stored.push(Arc::new(w));
        }
        let host_lease = host.alloc(total)?;
        Ok(OffloadStore {
            layers: stored,
            host,
            device,
            fetched_bytes: AtomicU64::new(0),
            fault: FaultInjector::disabled(),
            _host_lease: host_lease,
        })
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total at-rest bytes.
    pub fn host_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bytes()).sum()
    }

    /// Bytes a fetched (fully materialised) layer occupies on device.
    pub fn fetched_bytes(&self, layer: u32) -> usize {
        // Materialised layers are full-precision regardless of the
        // at-rest format; compute from a cheap probe of feature counts.
        let l = &self.layers[layer as usize];
        let lin = |x: &Linear| {
            x.in_features * x.out_features * 4 + x.bias.as_ref().map_or(0, |b| b.len() * 4)
        };
        let norms = (l.ln1_gamma.len() + l.ln1_beta.len()) * 4 * 2;
        lin(&l.q)
            + lin(&l.k)
            + lin(&l.v)
            + lin(&l.o)
            + l.mlp.iter().map(lin).sum::<usize>()
            + norms
    }

    /// Total host→device weight traffic so far, in bytes. At rest the
    /// layers may be quantized, so the *transferred* volume is the
    /// at-rest size (what crosses the link), not the materialised size.
    pub fn total_fetched_bytes(&self) -> u64 {
        self.fetched_bytes.load(Ordering::Relaxed)
    }

    /// Fetch layer `idx` to the device: dequantize/copy into a
    /// full-precision working set charged to the device pool. With a
    /// fault injector attached, the transfer may stall (a real sleep —
    /// the engine-side counterpart of the simulator's virtual stall).
    pub fn fetch(&self, idx: u32) -> Result<FetchedLayer, PoolExhausted> {
        if let Some(stall) = self.fault.transfer_stall("store.fetch", idx as u64) {
            std::thread::sleep(stall);
        }
        let at_rest = &self.layers[idx as usize];
        let lease = self.device.alloc(self.fetched_bytes(idx))?;
        self.fetched_bytes
            .fetch_add(at_rest.bytes() as u64, Ordering::Relaxed);
        let weights = LayerWeights {
            ln1_gamma: at_rest.ln1_gamma.clone(),
            ln1_beta: at_rest.ln1_beta.clone(),
            q: materialize_linear(&at_rest.q),
            k: materialize_linear(&at_rest.k),
            v: materialize_linear(&at_rest.v),
            o: materialize_linear(&at_rest.o),
            ln2_gamma: at_rest.ln2_gamma.clone(),
            ln2_beta: at_rest.ln2_beta.clone(),
            mlp: at_rest.mlp.iter().map(materialize_linear).collect(),
            family: at_rest.family,
        };
        Ok(FetchedLayer {
            weights,
            layer: idx,
            _lease: lease,
        })
    }

    /// [`OffloadStore::fetch`] under a retry policy: transient device-pool
    /// pressure (injected or real) is retried with backoff until the
    /// policy's attempt or deadline budget runs out. Retries are counted
    /// on the attached injector.
    pub fn fetch_with_retry(
        &self,
        idx: u32,
        retry: &RetryPolicy,
    ) -> Result<FetchedLayer, PoolExhausted> {
        let mut retried = false;
        let out = retry.run(
            |_| self.fetch(idx),
            |_, _| {
                retried = true;
                self.fault.note_retry();
            },
        );
        match out {
            Ok(f) => {
                if retried {
                    self.fault.note_retry_success();
                }
                Ok(f)
            }
            Err(e) => Err(e.into_last()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    fn pools(device_cap: usize) -> (Arc<MemPool>, Arc<MemPool>) {
        (
            MemPool::new("host", 1 << 30),
            MemPool::new("device", device_cap),
        )
    }

    #[test]
    fn quantized_at_rest_is_smaller_on_host() {
        let cfg = presets::tiny_test();
        let (h1, d1) = pools(1 << 30);
        let full =
            OffloadStore::synthesize(&cfg, 1, None, h1.clone(), d1).unwrap();
        let (h2, d2) = pools(1 << 30);
        let quant =
            OffloadStore::synthesize(&cfg, 1, Some(QuantConfig::int4()), h2.clone(), d2)
                .unwrap();
        assert!(quant.host_bytes() * 3 < full.host_bytes());
        assert_eq!(h1.used(), full.host_bytes());
        assert_eq!(h2.used(), quant.host_bytes());
    }

    #[test]
    fn fetch_charges_and_frees_device_pool() {
        let cfg = presets::tiny_test();
        let (host, device) = pools(16 << 20);
        let store =
            OffloadStore::synthesize(&cfg, 2, Some(QuantConfig::int8()), host, device.clone())
                .unwrap();
        assert_eq!(device.used(), 0);
        {
            let f = store.fetch(0).unwrap();
            assert_eq!(device.used(), store.fetched_bytes(0));
            assert_eq!(f.layer, 0);
        }
        assert_eq!(device.used(), 0, "drop must free the lease");
    }

    #[test]
    fn fetch_fails_when_device_too_small() {
        let cfg = presets::tiny_test();
        let (host, device) = pools(1024); // far too small for a layer
        let store = OffloadStore::synthesize(&cfg, 3, None, host, device).unwrap();
        assert!(store.fetch(0).is_err());
    }

    #[test]
    fn fetched_layer_computes_like_at_rest_full_precision() {
        use lm_tensor::{KvCache, Tensor};
        let cfg = presets::tiny_test();
        let (host, device) = pools(64 << 20);
        let store = OffloadStore::synthesize(&cfg, 4, None, host, device).unwrap();
        let fetched = store.fetch(1).unwrap();
        let reference = LayerWeights::synthesize(&cfg, 1, 4);
        let x = Tensor::randn([2, 64], 1.0, 8);
        let mut c1 = KvCache::new(2, 64, 4);
        let mut c2 = KvCache::new(2, 64, 4);
        let a = fetched.weights.forward_decode(&x, &mut c1, 4, 0);
        let b = reference.forward_decode(&x, &mut c2, 4, 0);
        assert!(a.allclose(&b, 1e-6));
    }

    #[test]
    fn fetch_retries_clear_injected_pool_pressure() {
        use lm_fault::{FaultConfig, FaultInjector};
        let cfg = presets::tiny_test();
        let (host, device) = pools(64 << 20);
        let fault = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 0.6,
            pool_pressure_bytes: 1 << 30, // bigger than the pool: spike = failure
            ..FaultConfig::quiescent(11)
        });
        device.attach_fault(fault.clone());
        let mut store = OffloadStore::synthesize(&cfg, 6, None, host, device).unwrap();
        store.fault = fault.clone();
        let policy = lm_fault::RetryPolicy {
            max_attempts: 32,
            ..lm_fault::RetryPolicy::fast_test()
        };
        // At rate 0.6 with fresh draws per attempt, 32 attempts make
        // failure astronomically unlikely; every layer must come through.
        for i in 0..store.num_layers() as u32 {
            store.fetch_with_retry(i, &policy).unwrap();
        }
        let stats = fault.stats();
        assert!(stats.pool_pressure_spikes > 0, "spikes never fired");
        assert_eq!(stats.retries, stats.pool_pressure_spikes);
    }

    #[test]
    fn double_buffering_needs_two_layer_budget() {
        let cfg = presets::tiny_test();
        let (host, device) = pools(0);
        let store = OffloadStore::synthesize(&cfg, 5, None, host, device.clone()).unwrap();
        let one = store.fetched_bytes(0);
        // Rebuild device pool sized for exactly two layers.
        let device2 = MemPool::new("device", 2 * one);
        let store = OffloadStore {
            device: device2.clone(),
            ..store
        };
        let a = store.fetch(0).unwrap();
        let b = store.fetch(1).unwrap();
        assert!(store.fetch(2).is_err(), "third concurrent fetch must fail");
        drop(a);
        let _c = store.fetch(2).unwrap();
        drop(b);
        assert_eq!(device2.used(), store.fetched_bytes(2));
    }
}
