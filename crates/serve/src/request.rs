//! The serving request/response vocabulary and the seeded virtual-clock
//! arrival queue.
//!
//! All times are virtual microseconds (`u64`) since the start of the
//! serving run: the scheduler advances its clock by the performance
//! model's task costs, never by wall time, so a run is a deterministic
//! function of `(traffic seed, backend, config)`.

use lm_models::ModelConfig;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One independent generation request entering the serving queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    pub id: u64,
    /// Prompt token ids. Requests are ragged: prompts of different
    /// lengths mix freely; the scheduler pads within an admitted group.
    pub prompt: Vec<u32>,
    /// Tokens to generate beyond the prompt.
    pub gen_len: usize,
    /// Larger is more urgent; ties broken by arrival then id.
    pub priority: u8,
    /// Absolute virtual deadline for *admission* (not completion); a
    /// request still queued past it is rejected, mirroring client
    /// timeouts. `None` waits forever.
    pub deadline_us: Option<u64>,
    /// Per-request sampling seed (synthetic backends derive the token
    /// stream from it).
    pub seed: u64,
    /// Virtual arrival time.
    pub arrival_us: u64,
}

impl Request {
    pub fn new(id: u64, prompt: Vec<u32>, gen_len: usize) -> Self {
        Request {
            id,
            prompt,
            gen_len,
            priority: 0,
            deadline_us: None,
            seed: id,
            arrival_us: 0,
        }
    }

    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    pub fn with_arrival_us(mut self, arrival_us: u64) -> Self {
        self.arrival_us = arrival_us;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A completed request with its full token stream and latency marks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    pub id: u64,
    pub tokens: Vec<u32>,
    pub arrival_us: u64,
    /// Virtual time the first generated token was delivered.
    pub first_token_us: u64,
    /// Virtual time the last token was delivered.
    pub finish_us: u64,
}

impl Response {
    /// Time to first token, seconds.
    pub fn ttft_s(&self) -> f64 {
        (self.first_token_us.saturating_sub(self.arrival_us)) as f64 / 1e6
    }

    /// End-to-end request latency, seconds.
    pub fn latency_s(&self) -> f64 {
        (self.finish_us.saturating_sub(self.arrival_us)) as f64 / 1e6
    }
}

/// Why a request never produced a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Failed the engine's shared request checker
    /// ([`lm_engine::validate_request`]).
    Invalid(String),
    /// Still queued past its admission deadline.
    DeadlineExpired { deadline_us: u64, now_us: u64 },
    /// Worst-case KV lease larger than the whole pool: unservable under
    /// this plan no matter how long it waits.
    PoolOverCommit { bytes: usize, capacity: usize },
    /// Admission kept failing after the retry budget with no prospect of
    /// recovery (e.g. injected pool pressure on an otherwise empty pool).
    AdmissionFailed(String),
}

// The vendored serde derive handles named-field structs and unit-variant
// enums only; a data-carrying enum serialises by hand as a tagged object.
impl Serialize for RejectReason {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        let kind = match self {
            RejectReason::Invalid(reason) => {
                m.insert("reason".into(), serde::Value::String(reason.clone()));
                "invalid"
            }
            RejectReason::DeadlineExpired { deadline_us, now_us } => {
                m.insert("deadline_us".into(), serde::Value::PosInt(*deadline_us));
                m.insert("now_us".into(), serde::Value::PosInt(*now_us));
                "deadline_expired"
            }
            RejectReason::PoolOverCommit { bytes, capacity } => {
                m.insert("bytes".into(), serde::Value::PosInt(*bytes as u64));
                m.insert("capacity".into(), serde::Value::PosInt(*capacity as u64));
                "pool_over_commit"
            }
            RejectReason::AdmissionFailed(reason) => {
                m.insert("reason".into(), serde::Value::String(reason.clone()));
                "admission_failed"
            }
        };
        m.insert("kind".into(), serde::Value::String(kind.to_string()));
        serde::Value::Object(m)
    }
}

impl Deserialize for RejectReason {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for RejectReason"))?;
        let kind: String = serde::field(map, "kind")?;
        match kind.as_str() {
            "invalid" => Ok(RejectReason::Invalid(serde::field(map, "reason")?)),
            "deadline_expired" => Ok(RejectReason::DeadlineExpired {
                deadline_us: serde::field(map, "deadline_us")?,
                now_us: serde::field(map, "now_us")?,
            }),
            "pool_over_commit" => Ok(RejectReason::PoolOverCommit {
                bytes: serde::field(map, "bytes")?,
                capacity: serde::field(map, "capacity")?,
            }),
            "admission_failed" => Ok(RejectReason::AdmissionFailed(serde::field(map, "reason")?)),
            other => Err(serde::Error::custom(format!(
                "unknown RejectReason kind '{other}'"
            ))),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Invalid(r) => write!(f, "invalid request: {r}"),
            RejectReason::DeadlineExpired { deadline_us, now_us } => {
                write!(f, "deadline {deadline_us}us expired at {now_us}us")
            }
            RejectReason::PoolOverCommit { bytes, capacity } => {
                write!(f, "KV lease of {bytes} B exceeds the {capacity} B pool")
            }
            RejectReason::AdmissionFailed(r) => write!(f, "admission failed: {r}"),
        }
    }
}

/// A rejected request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rejection {
    pub id: u64,
    pub reason: RejectReason,
}

/// Requests sorted by arrival time; the scheduler drains the arrived
/// prefix at each block boundary.
#[derive(Debug, Clone, Default)]
pub struct ArrivalQueue {
    /// Sorted by `(arrival_us, id)` ascending; consumed from the front.
    pending: std::collections::VecDeque<Request>,
}

impl ArrivalQueue {
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival_us, r.id));
        ArrivalQueue {
            pending: requests.into(),
        }
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Arrival time of the next not-yet-arrived request.
    pub fn next_arrival_us(&self) -> Option<u64> {
        self.pending.front().map(|r| r.arrival_us)
    }

    /// Remove and return every request with `arrival_us <= now_us`.
    pub fn pop_arrived(&mut self, now_us: u64) -> Vec<Request> {
        let mut out = Vec::new();
        while self
            .pending
            .front()
            .is_some_and(|r| r.arrival_us <= now_us)
        {
            if let Some(r) = self.pending.pop_front() {
                out.push(r);
            }
        }
        out
    }
}

/// Seconds → virtual microseconds, rounding up so no positive cost ever
/// collapses to zero ticks.
pub(crate) fn micros(seconds: f64) -> u64 {
    (seconds * 1e6).ceil().max(0.0) as u64
}

/// Synthesize a seeded open-loop traffic trace: Poisson arrivals at
/// `rps` requests/second with ragged prompt/generation lengths and mixed
/// priorities, sized to fit `cfg`'s context window. Identical
/// `(seed, rps, n)` always produce the identical trace.
pub fn synth_traffic(seed: u64, rps: f64, n: usize, cfg: &ModelConfig) -> Vec<Request> {
    assert!(rps > 0.0, "rps must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t_us = 0u64;
    let max_prompt = ((cfg.max_seq_len / 4) as usize).max(5);
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        // Exponential inter-arrival: -ln(1-u)/rps.
        let u: f64 = rng.gen();
        t_us += micros(-(1.0 - u).ln() / rps);
        let prompt_len = rng.gen_range(4usize..max_prompt);
        let gen_cap = (cfg.max_seq_len as usize - prompt_len).clamp(5, 64);
        let gen_len = rng.gen_range(4usize..gen_cap);
        let prompt = (0..prompt_len)
            .map(|_| rng.gen_range(1u32..cfg.vocab_size as u32))
            .collect();
        let mut req = Request::new(id, prompt, gen_len)
            .with_priority(rng.gen_range(0u64..3) as u8)
            .with_arrival_us(t_us)
            .with_seed(seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        // A slice of the traffic carries admission deadlines (generous:
        // several mean inter-arrival periods).
        if rng.gen_bool(0.125) {
            req = req.with_deadline_us(t_us + micros(64.0 / rps));
        }
        out.push(req);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    #[test]
    fn traffic_is_deterministic_and_well_formed() {
        let cfg = presets::opt_30b();
        let a = synth_traffic(7, 4.0, 32, &cfg);
        let b = synth_traffic(7, 4.0, 32, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let mut prev = 0;
        for r in &a {
            assert!(!r.prompt.is_empty());
            assert!(r.gen_len >= 4);
            assert!((r.prompt.len() + r.gen_len) as u64 <= cfg.max_seq_len);
            assert!(r.arrival_us >= prev, "arrivals must be monotone");
            prev = r.arrival_us;
        }
        let c = synth_traffic(8, 4.0, 32, &cfg);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrival_queue_drains_in_time_order() {
        let reqs = vec![
            Request::new(1, vec![1], 2).with_arrival_us(50),
            Request::new(0, vec![1], 2).with_arrival_us(10),
            Request::new(2, vec![1], 2).with_arrival_us(90),
        ];
        let mut q = ArrivalQueue::new(reqs);
        assert_eq!(q.next_arrival_us(), Some(10));
        assert_eq!(q.pop_arrived(5).len(), 0);
        let first = q.pop_arrived(60);
        assert_eq!(first.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_arrived(100)[0].id, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn response_latency_math() {
        let r = Response {
            id: 0,
            tokens: vec![1, 2],
            arrival_us: 1_000_000,
            first_token_us: 1_500_000,
            finish_us: 3_000_000,
        };
        assert!((r.ttft_s() - 0.5).abs() < 1e-9);
        assert!((r.latency_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn micros_rounds_up() {
        assert_eq!(micros(0.0), 0);
        assert_eq!(micros(1e-7), 1);
        assert_eq!(micros(1.5), 1_500_000);
    }
}
